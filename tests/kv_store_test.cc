#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "kv/encryptor.h"
#include "kv/snapshot.h"
#include "kv/store.h"

namespace ccf::kv {
namespace {

TEST(KvStore, EmptyStore) {
  Store store;
  EXPECT_EQ(store.current_seqno(), 0u);
  EXPECT_EQ(store.committed_seqno(), 0u);
  EXPECT_FALSE(store.Get("public:m", ToBytes("k")).has_value());
}

TEST(KvStore, WriteThenRead) {
  Store store;
  Tx tx = store.BeginTx();
  tx.Handle("public:m")->PutStr("k", "v");
  auto result = store.CommitTx(&tx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seqno, 1u);
  EXPECT_FALSE(result->write_set.empty());
  EXPECT_EQ(store.GetStr("public:m", "k"), "v");
  EXPECT_EQ(store.current_seqno(), 1u);
}

TEST(KvStore, ReadOwnWrites) {
  Store store;
  Tx tx = store.BeginTx();
  MapHandle* h = tx.Handle("private:m");
  EXPECT_FALSE(h->GetStr("k").has_value());
  h->PutStr("k", "v1");
  EXPECT_EQ(h->GetStr("k"), "v1");
  h->PutStr("k", "v2");
  EXPECT_EQ(h->GetStr("k"), "v2");
  h->RemoveStr("k");
  EXPECT_FALSE(h->GetStr("k").has_value());
}

TEST(KvStore, ReadOnlyTxGetsCurrentSeqno) {
  Store store;
  Tx w = store.BeginTx();
  w.Handle("public:m")->PutStr("a", "1");
  ASSERT_TRUE(store.CommitTx(&w).ok());

  Tx r = store.BeginTx();
  EXPECT_EQ(r.Handle("public:m")->GetStr("a"), "1");
  auto result = store.CommitTx(&r);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seqno, 1u);  // no new version
  EXPECT_TRUE(result->write_set.empty());
  EXPECT_EQ(store.current_seqno(), 1u);
}

TEST(KvStore, RemoveIsRecorded) {
  Store store;
  Tx t1 = store.BeginTx();
  t1.Handle("public:m")->PutStr("k", "v");
  ASSERT_TRUE(store.CommitTx(&t1).ok());

  Tx t2 = store.BeginTx();
  t2.Handle("public:m")->RemoveStr("k");
  auto result = store.CommitTx(&t2);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(store.GetStr("public:m", "k").has_value());
  // The write set carries the removal for replication.
  const MapWrites& writes = result->write_set.maps.at("public:m");
  EXPECT_FALSE(writes.at(ToBytes("k")).has_value());
}

TEST(KvStore, ConflictingReadAborts) {
  Store store;
  Tx setup = store.BeginTx();
  setup.Handle("public:m")->PutStr("k", "0");
  ASSERT_TRUE(store.CommitTx(&setup).ok());

  // Both transactions read k then write based on it.
  Tx a = store.BeginTx();
  Tx b = store.BeginTx();
  a.Handle("public:m")->GetStr("k");
  a.Handle("public:m")->PutStr("k", "a");
  b.Handle("public:m")->GetStr("k");
  b.Handle("public:m")->PutStr("k", "b");

  ASSERT_TRUE(store.CommitTx(&a).ok());
  auto result = store.CommitTx(&b);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kAborted);
  // Re-execution against the new state succeeds.
  Tx b2 = store.BeginTx();
  b2.Handle("public:m")->GetStr("k");
  b2.Handle("public:m")->PutStr("k", "b");
  EXPECT_TRUE(store.CommitTx(&b2).ok());
}

TEST(KvStore, BlindWritesDoNotConflict) {
  Store store;
  Tx a = store.BeginTx();
  Tx b = store.BeginTx();
  a.Handle("public:m")->PutStr("x", "a");
  b.Handle("public:m")->PutStr("y", "b");
  EXPECT_TRUE(store.CommitTx(&a).ok());
  EXPECT_TRUE(store.CommitTx(&b).ok());
  EXPECT_EQ(store.GetStr("public:m", "x"), "a");
  EXPECT_EQ(store.GetStr("public:m", "y"), "b");
}

TEST(KvStore, AbsentReadConflictsWithInsert) {
  Store store;
  Tx a = store.BeginTx();
  // a checks k is absent, then acts on it.
  EXPECT_FALSE(a.Handle("public:m")->GetStr("k").has_value());
  a.Handle("public:m")->PutStr("other", "1");

  Tx b = store.BeginTx();
  b.Handle("public:m")->PutStr("k", "inserted");
  ASSERT_TRUE(store.CommitTx(&b).ok());

  auto result = store.CommitTx(&a);
  EXPECT_FALSE(result.ok());
}

TEST(KvStore, ForeachConflictsWithAnyMapWrite) {
  Store store;
  Tx setup = store.BeginTx();
  setup.Handle("public:m")->PutStr("k1", "v1");
  ASSERT_TRUE(store.CommitTx(&setup).ok());

  Tx scan = store.BeginTx();
  int n = 0;
  scan.Handle("public:m")->Foreach([&](const Bytes&, const Bytes&) {
    ++n;
    return true;
  });
  EXPECT_EQ(n, 1);
  scan.Handle("public:m")->PutStr("summary", "1");

  Tx w = store.BeginTx();
  w.Handle("public:m")->PutStr("k2", "v2");
  ASSERT_TRUE(store.CommitTx(&w).ok());

  EXPECT_FALSE(store.CommitTx(&scan).ok());
}

TEST(KvStore, ForeachMergesOverlay) {
  Store store;
  Tx setup = store.BeginTx();
  setup.Handle("public:m")->PutStr("a", "1");
  setup.Handle("public:m")->PutStr("b", "2");
  ASSERT_TRUE(store.CommitTx(&setup).ok());

  Tx tx = store.BeginTx();
  MapHandle* h = tx.Handle("public:m");
  h->PutStr("c", "3");
  h->RemoveStr("a");
  h->PutStr("b", "2x");
  std::map<std::string, std::string> seen;
  h->Foreach([&](const Bytes& k, const Bytes& v) {
    seen[ToString(k)] = ToString(v);
    return true;
  });
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen["b"], "2x");
  EXPECT_EQ(seen["c"], "3");
  EXPECT_EQ(h->Size(), 2u);
}

TEST(KvStore, ApplyWriteSetOnBackup) {
  // Primary commits; the serialized write set replayed on a backup yields
  // identical state.
  Store primary;
  Store backup;
  for (int i = 0; i < 10; ++i) {
    Tx tx = primary.BeginTx();
    tx.Handle("public:m")->PutStr("k" + std::to_string(i),
                                  "v" + std::to_string(i));
    tx.Handle("private:p")->PutStr("s" + std::to_string(i),
                                   std::to_string(i * i));
    auto result = primary.CommitTx(&tx);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(backup.ApplyWriteSet(result->write_set, result->seqno).ok());
  }
  EXPECT_EQ(backup.current_seqno(), primary.current_seqno());
  EXPECT_EQ(SerializeState(backup.current_state()),
            SerializeState(primary.current_state()));
}

TEST(KvStore, ApplyWriteSetRejectsGaps) {
  Store store;
  WriteSet ws;
  ws.maps["public:m"][ToBytes("k")] = ToBytes("v");
  EXPECT_FALSE(store.ApplyWriteSet(ws, 5).ok());
  EXPECT_TRUE(store.ApplyWriteSet(ws, 1).ok());
  EXPECT_FALSE(store.ApplyWriteSet(ws, 1).ok());
}

TEST(KvStore, RollbackRestoresExactState) {
  Store store;
  std::vector<Bytes> state_at;
  state_at.push_back(SerializeState(store.current_state()));
  for (int i = 1; i <= 10; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("k", std::to_string(i));
    tx.Handle("public:m")->PutStr("k" + std::to_string(i), "x");
    ASSERT_TRUE(store.CommitTx(&tx).ok());
    state_at.push_back(SerializeState(store.current_state()));
  }
  ASSERT_TRUE(store.Rollback(4).ok());
  EXPECT_EQ(store.current_seqno(), 4u);
  EXPECT_EQ(SerializeState(store.current_state()), state_at[4]);
  EXPECT_EQ(store.GetStr("public:m", "k"), "4");
  EXPECT_FALSE(store.GetStr("public:m", "k7").has_value());
  // New writes continue from seqno 5.
  Tx tx = store.BeginTx();
  tx.Handle("public:m")->PutStr("k", "new5");
  auto result = store.CommitTx(&tx);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->seqno, 5u);
}

TEST(KvStore, RollbackBelowCommitRejected) {
  Store store;
  for (int i = 1; i <= 5; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("k", std::to_string(i));
    ASSERT_TRUE(store.CommitTx(&tx).ok());
  }
  ASSERT_TRUE(store.Compact(3).ok());
  EXPECT_FALSE(store.Rollback(2).ok());
  EXPECT_TRUE(store.Rollback(3).ok());
  EXPECT_EQ(store.GetStr("public:m", "k"), "3");
}

TEST(KvStore, CompactDropsOldVersionsButKeepsState) {
  Store store;
  for (int i = 1; i <= 10; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("k", std::to_string(i));
    ASSERT_TRUE(store.CommitTx(&tx).ok());
  }
  ASSERT_TRUE(store.Compact(7).ok());
  EXPECT_EQ(store.committed_seqno(), 7u);
  EXPECT_EQ(store.current_seqno(), 10u);
  EXPECT_EQ(store.GetStr("public:m", "k"), "10");
  // Versions <= 7 are gone except the committed one.
  EXPECT_FALSE(store.BeginTxAt(5).ok());
  EXPECT_TRUE(store.BeginTxAt(7).ok());
  EXPECT_TRUE(store.BeginTxAt(9).ok());
  // Idempotent / stale compaction is a no-op.
  EXPECT_TRUE(store.Compact(3).ok());
  EXPECT_EQ(store.committed_seqno(), 7u);
}

TEST(KvStore, BeginTxAtReadsHistoricalVersion) {
  Store store;
  for (int i = 1; i <= 5; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("k", std::to_string(i));
    ASSERT_TRUE(store.CommitTx(&tx).ok());
  }
  auto tx3 = store.BeginTxAt(3);
  ASSERT_TRUE(tx3.ok());
  EXPECT_EQ(tx3->Handle("public:m")->GetStr("k"), "3");
}

TEST(KvStore, StaleTxWithoutConflictCommits) {
  Store store;
  Tx a = store.BeginTx();
  a.Handle("public:m")->GetStr("unrelated");
  a.Handle("public:m")->PutStr("a", "1");

  Tx b = store.BeginTx();
  b.Handle("public:other")->PutStr("b", "2");
  ASSERT_TRUE(store.CommitTx(&b).ok());

  // a's base is stale but its reads are unaffected.
  EXPECT_TRUE(store.CommitTx(&a).ok());
}

// ----------------------------------------------------------- Write sets

TEST(WriteSet, PublicPrivateSplit) {
  WriteSet ws;
  ws.maps["public:gov"][ToBytes("k1")] = ToBytes("v1");
  ws.maps["private:app"][ToBytes("k2")] = ToBytes("v2");
  ws.maps["private:app"][ToBytes("k3")] = std::nullopt;

  Bytes pub = ws.SerializePublic();
  Bytes priv = ws.SerializePrivate();
  auto parsed = WriteSet::Parse(pub, priv);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->maps, ws.maps);

  // Each half alone only contains its maps.
  auto pub_only = WriteSet::Parse(pub, {});
  ASSERT_TRUE(pub_only.ok());
  EXPECT_EQ(pub_only->maps.size(), 1u);
  EXPECT_TRUE(pub_only->maps.count("public:gov"));
}

TEST(WriteSet, EmptySerializesEmpty) {
  WriteSet ws;
  auto parsed = WriteSet::Parse(ws.SerializePublic(), ws.SerializePrivate());
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->empty());
}

TEST(WriteSet, ParseRejectsCorrupt) {
  WriteSet ws;
  ws.maps["public:m"][ToBytes("k")] = ToBytes("v");
  Bytes data = ws.SerializePublic();
  data.pop_back();
  WriteSet out;
  EXPECT_FALSE(WriteSet::ParseInto(data, &out).ok());
}

// ------------------------------------------------------------ Snapshots

TEST(KvSnapshot, RoundTrip) {
  Store store;
  for (int i = 1; i <= 20; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("k" + std::to_string(i), "v");
    tx.Handle("private:p")->PutStr("s" + std::to_string(i), "w");
    ASSERT_TRUE(store.CommitTx(&tx).ok());
  }
  ASSERT_TRUE(store.Compact(20).ok());
  Snapshot snap = TakeSnapshot(store, /*view=*/2);
  EXPECT_EQ(snap.seqno, 20u);

  Store fresh;
  ASSERT_TRUE(InstallSnapshot(snap, &fresh).ok());
  EXPECT_EQ(fresh.current_seqno(), 20u);
  EXPECT_EQ(fresh.committed_seqno(), 20u);
  EXPECT_EQ(fresh.GetStr("public:m", "k7"), "v");
  EXPECT_EQ(SerializeState(fresh.current_state()),
            SerializeState(store.committed_state()));
}

TEST(KvSnapshot, DeterministicAcrossReplicas) {
  // Two stores reaching the same state through the same write sets produce
  // byte-identical snapshots (needed for snapshot evidence digests).
  Store a, b;
  for (int i = 1; i <= 15; ++i) {
    Tx tx = a.BeginTx();
    tx.Handle("public:m")->PutStr("k" + std::to_string(i % 5),
                                  std::to_string(i));
    auto result = a.CommitTx(&tx);
    ASSERT_TRUE(result.ok());
    ASSERT_TRUE(b.ApplyWriteSet(result->write_set, result->seqno).ok());
  }
  ASSERT_TRUE(a.Compact(15).ok());
  ASSERT_TRUE(b.Compact(15).ok());
  Snapshot sa = TakeSnapshot(a, 1);
  Snapshot sb = TakeSnapshot(b, 1);
  EXPECT_EQ(sa.data, sb.data);
  EXPECT_EQ(sa.Digest(), sb.Digest());
}

TEST(KvSnapshot, ConflictDetectionSurvivesInstall) {
  // Versions are preserved through a snapshot, so optimistic validation
  // still works on the restored store.
  Store store;
  Tx tx = store.BeginTx();
  tx.Handle("public:m")->PutStr("k", "v");
  ASSERT_TRUE(store.CommitTx(&tx).ok());
  ASSERT_TRUE(store.Compact(1).ok());

  Store restored;
  ASSERT_TRUE(InstallSnapshot(TakeSnapshot(store, 1), &restored).ok());

  Tx a = restored.BeginTx();
  a.Handle("public:m")->GetStr("k");
  a.Handle("public:m")->PutStr("k", "a");
  Tx b = restored.BeginTx();
  b.Handle("public:m")->GetStr("k");
  b.Handle("public:m")->PutStr("k", "b");
  ASSERT_TRUE(restored.CommitTx(&a).ok());
  EXPECT_FALSE(restored.CommitTx(&b).ok());
}

TEST(KvSnapshot, CorruptDataRejected) {
  Store store;
  Tx tx = store.BeginTx();
  tx.Handle("public:m")->PutStr("k", "v");
  ASSERT_TRUE(store.CommitTx(&tx).ok());
  ASSERT_TRUE(store.Compact(1).ok());
  Snapshot snap = TakeSnapshot(store, 1);
  snap.data.pop_back();
  Store fresh;
  EXPECT_FALSE(InstallSnapshot(snap, &fresh).ok());
}

// ------------------------------------------------------------ Encryptor

TEST(TxEncryptor, SealOpenRoundTrip) {
  crypto::Drbg drbg("encryptor", 0);
  LedgerSecret secret = LedgerSecret::Generate(&drbg);
  TxEncryptor enc(secret);
  Bytes plain = ToBytes("private writes");
  Bytes aad = ToBytes("public-digest");
  Bytes sealed = enc.Seal(2, 7, plain, aad);
  auto opened = enc.Open(2, 7, sealed, aad);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, plain);
}

TEST(TxEncryptor, WrongTxIdRejected) {
  crypto::Drbg drbg("encryptor", 1);
  TxEncryptor enc(LedgerSecret::Generate(&drbg));
  Bytes sealed = enc.Seal(2, 7, ToBytes("p"), {});
  EXPECT_FALSE(enc.Open(2, 8, sealed, {}).ok());
  EXPECT_FALSE(enc.Open(3, 7, sealed, {}).ok());
  EXPECT_TRUE(enc.Open(2, 7, sealed, {}).ok());
}

TEST(TxEncryptor, AadBindsPublicHalf) {
  crypto::Drbg drbg("encryptor", 2);
  TxEncryptor enc(LedgerSecret::Generate(&drbg));
  Bytes sealed = enc.Seal(1, 1, ToBytes("p"), ToBytes("digest-a"));
  EXPECT_FALSE(enc.Open(1, 1, sealed, ToBytes("digest-b")).ok());
}

TEST(TxEncryptor, DifferentSecretsIncompatible) {
  crypto::Drbg drbg("encryptor", 3);
  TxEncryptor a(LedgerSecret::Generate(&drbg));
  TxEncryptor b(LedgerSecret::Generate(&drbg));
  Bytes sealed = a.Seal(1, 1, ToBytes("p"), {});
  EXPECT_FALSE(b.Open(1, 1, sealed, {}).ok());
}

// ------------------------------------------------ retained-root bounding

// Retained full states are bounded by the cap no matter how long the
// uncommitted window grows; historical versions stay reachable because
// write sets are replayed on demand.
TEST(KvStore, RetainedRootsStayBounded) {
  Store store;
  store.SetRetainedRootCap(8);
  for (int i = 1; i <= 200; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("k" + std::to_string(i),
                                  "v" + std::to_string(i));
    ASSERT_TRUE(store.CommitTx(&tx).ok());
    EXPECT_LE(store.retained_root_count(), 8u);
  }
  EXPECT_EQ(store.current_seqno(), 200u);
}

TEST(KvStore, EvictedVersionsReconstructedForBeginTxAt) {
  Store store;
  store.SetRetainedRootCap(4);
  for (int i = 1; i <= 50; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("last", std::to_string(i));
    ASSERT_TRUE(store.CommitTx(&tx).ok());
  }
  // Seqno 10 is far below the newest 4 retained roots.
  auto tx10 = store.BeginTxAt(10);
  ASSERT_TRUE(tx10.ok()) << tx10.status().ToString();
  EXPECT_EQ(tx10->Handle("public:m")->GetStr("last"), "10");
  auto tx49 = store.BeginTxAt(49);
  ASSERT_TRUE(tx49.ok());
  EXPECT_EQ(tx49->Handle("public:m")->GetStr("last"), "49");
}

TEST(KvStore, RollbackToEvictedVersionRestoresExactState) {
  Store store;
  store.SetRetainedRootCap(2);
  for (int i = 1; i <= 30; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("last", std::to_string(i));
    tx.Handle("public:m")->PutStr("k" + std::to_string(i), "x");
    ASSERT_TRUE(store.CommitTx(&tx).ok());
  }
  ASSERT_TRUE(store.Rollback(7).ok());
  EXPECT_EQ(store.current_seqno(), 7u);
  EXPECT_EQ(store.GetStr("public:m", "last"), "7");
  EXPECT_EQ(store.GetStr("public:m", "k7"), "x");
  EXPECT_FALSE(store.GetStr("public:m", "k8").has_value());
}

TEST(KvStore, CompactOnEvictedVersionStillWorks) {
  Store store;
  store.SetRetainedRootCap(2);
  for (int i = 1; i <= 30; ++i) {
    Tx tx = store.BeginTx();
    tx.Handle("public:m")->PutStr("last", std::to_string(i));
    ASSERT_TRUE(store.CommitTx(&tx).ok());
  }
  ASSERT_TRUE(store.Compact(12).ok());
  EXPECT_EQ(store.committed_seqno(), 12u);
  EXPECT_FALSE(store.BeginTxAt(11).ok());  // below commit
  auto tx12 = store.BeginTxAt(12);
  ASSERT_TRUE(tx12.ok());
  EXPECT_EQ(tx12->Handle("public:m")->GetStr("last"), "12");
}

}  // namespace
}  // namespace ccf::kv
