#include <gtest/gtest.h>

#include "script/interp.h"

namespace ccf::script {
namespace {

// Compiles and runs a snippet, returning the last expression value.
Result<Value> Eval(const std::string& src) {
  auto prog = Compile(src);
  if (!prog.ok()) return prog.status();
  Interpreter interp;
  return interp.Run(*prog);
}

double EvalNum(const std::string& src) {
  auto r = Eval(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status().ToString();
  if (!r.ok() || !r->is_number()) return -999999;
  return r->AsNumber();
}

std::string EvalStr(const std::string& src) {
  auto r = Eval(src);
  EXPECT_TRUE(r.ok()) << src << ": " << r.status().ToString();
  if (!r.ok()) return "<error>";
  return r->ToDisplayString();
}

TEST(CclBasics, Arithmetic) {
  EXPECT_EQ(EvalNum("1 + 2 * 3;"), 7);
  EXPECT_EQ(EvalNum("(1 + 2) * 3;"), 9);
  EXPECT_EQ(EvalNum("10 / 4;"), 2.5);
  EXPECT_EQ(EvalNum("10 % 3;"), 1);
  EXPECT_EQ(EvalNum("-5 + 3;"), -2);
  EXPECT_EQ(EvalNum("2 - -3;"), 5);
}

TEST(CclBasics, Variables) {
  EXPECT_EQ(EvalNum("let x = 4; let y = x * x; y + 1;"), 17);
  EXPECT_EQ(EvalNum("let x = 1; x = x + 1; x += 3; x;"), 5);
  EXPECT_EQ(EvalNum("let x = 10; x -= 2; x *= 3; x /= 4; x;"), 6);
}

TEST(CclBasics, UndeclaredAssignmentFails) {
  EXPECT_FALSE(Eval("y = 3;").ok());
  EXPECT_FALSE(Eval("let x = z + 1;").ok());
}

TEST(CclBasics, Strings) {
  EXPECT_EQ(EvalStr("'a' + 'b' + 'c';"), "abc");
  EXPECT_EQ(EvalStr("'n' + 3;"), "n3");
  EXPECT_EQ(EvalNum("'hello'.length;"), 5);
  EXPECT_EQ(EvalStr("'hello'[1];"), "e");
  EXPECT_EQ(EvalStr("str('x=', 1 < 2);"), "x=true");
  auto r = Eval("'public:foo'.startsWith('public:');");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->AsBool());
}

TEST(CclBasics, ComparisonsAndLogic) {
  EXPECT_EQ(EvalStr("1 < 2;"), "true");
  EXPECT_EQ(EvalStr("'a' < 'b';"), "true");
  EXPECT_EQ(EvalStr("1 == 1 && 2 != 3;"), "true");
  EXPECT_EQ(EvalStr("false || 'fallback';"), "fallback");
  EXPECT_EQ(EvalStr("null && 1;"), "null");  // short-circuit returns lhs
  EXPECT_EQ(EvalStr("!null;"), "true");
  EXPECT_EQ(EvalStr("1 === 1;"), "true");
  EXPECT_EQ(EvalStr("1 !== 2;"), "true");
}

TEST(CclBasics, Ternary) {
  EXPECT_EQ(EvalNum("let x = 5; x > 3 ? 1 : 2;"), 1);
  EXPECT_EQ(EvalNum("let x = 1; x > 3 ? 1 : 2;"), 2);
}

TEST(CclControl, IfElse) {
  EXPECT_EQ(EvalNum(R"(
    let x = 10;
    let result = 0;
    if (x > 5) { result = 1; } else { result = 2; }
    result;
  )"), 1);
}

TEST(CclControl, WhileLoop) {
  EXPECT_EQ(EvalNum(R"(
    let sum = 0;
    let i = 1;
    while (i <= 10) { sum += i; i += 1; }
    sum;
  )"), 55);
}

TEST(CclControl, ForLoop) {
  EXPECT_EQ(EvalNum(R"(
    let sum = 0;
    for (let i = 0; i < 5; i += 1) { sum += i; }
    sum;
  )"), 10);
}

TEST(CclControl, BreakContinue) {
  EXPECT_EQ(EvalNum(R"(
    let sum = 0;
    for (let i = 0; i < 100; i += 1) {
      if (i % 2 == 0) { continue; }
      if (i > 10) { break; }
      sum += i;
    }
    sum;
  )"), 1 + 3 + 5 + 7 + 9);
}

TEST(CclControl, ForOfArray) {
  EXPECT_EQ(EvalNum(R"(
    let total = 0;
    for (let v of [1, 2, 3, 4]) { total += v; }
    total;
  )"), 10);
}

TEST(CclControl, ForOfObjectIteratesKeys) {
  EXPECT_EQ(EvalStr(R"(
    let obj = {b: 1, a: 2, c: 3};
    let ks = '';
    for (let k of obj) { ks += k; }
    ks;
  )"), "abc");  // deterministic sorted order
}

TEST(CclFunctions, DeclarationAndCall) {
  EXPECT_EQ(EvalNum(R"(
    function add(a, b) { return a + b; }
    add(2, 3);
  )"), 5);
}

TEST(CclFunctions, Recursion) {
  EXPECT_EQ(EvalNum(R"(
    function fib(n) {
      if (n < 2) { return n; }
      return fib(n - 1) + fib(n - 2);
    }
    fib(12);
  )"), 144);
}

TEST(CclFunctions, ClosuresCaptureEnvironment) {
  EXPECT_EQ(EvalNum(R"(
    function makeCounter() {
      let count = 0;
      return function() { count += 1; return count; };
    }
    let c = makeCounter();
    c(); c();
    c();
  )"), 3);
}

TEST(CclFunctions, HigherOrder) {
  EXPECT_EQ(EvalNum(R"(
    function apply(f, x) { return f(x); }
    apply(function(v) { return v * 10; }, 4);
  )"), 40);
}

TEST(CclFunctions, MissingArgsAreNull) {
  EXPECT_EQ(EvalStr("function f(a, b) { return b; } str(f(1));"), "null");
}

TEST(CclData, Arrays) {
  EXPECT_EQ(EvalNum("[10, 20, 30][1];"), 20);
  EXPECT_EQ(EvalNum("let a = [1]; a.push(2, 3); a.length;"), 3);
  EXPECT_EQ(EvalNum("let a = [1, 2, 3]; a.pop();"), 3);
  EXPECT_EQ(EvalStr("[1, 2].includes(2);"), "true");
  EXPECT_EQ(EvalStr("[1, 2].includes(5);"), "false");
  EXPECT_EQ(EvalStr("['a', 'b'].join('-');"), "a-b");
  EXPECT_EQ(EvalStr("let a = [1]; a[1] = 5; str(a[1]);"), "5");
  EXPECT_EQ(EvalStr("str([1,2][9]);"), "null");  // out of range reads null
}

TEST(CclData, Objects) {
  EXPECT_EQ(EvalNum("let o = {a: 1, b: 2}; o.a + o['b'];"), 3);
  EXPECT_EQ(EvalNum("let o = {}; o.x = 7; o.x;"), 7);
  EXPECT_EQ(EvalStr("let o = {a: 1}; str(o.missing);"), "null");
  EXPECT_EQ(EvalNum("len({a: 1, b: 2});"), 2);
  EXPECT_EQ(EvalStr("has({a: 1}, 'a');"), "true");
  EXPECT_EQ(EvalStr("let o = {a: 1}; del(o, 'a'); has(o, 'a');"), "false");
  EXPECT_EQ(EvalStr("keys({b: 1, a: 2}).join(',');"), "a,b");
}

TEST(CclData, NestedStructures) {
  EXPECT_EQ(EvalNum(R"(
    let conf = {nodes: [{id: 'n0', weight: 2}, {id: 'n1', weight: 3}]};
    let total = 0;
    for (let n of conf.nodes) { total += n.weight; }
    total;
  )"), 5);
}

TEST(CclData, ReferenceSemantics) {
  EXPECT_EQ(EvalNum(R"(
    let a = {count: 0};
    let b = a;
    b.count = 42;
    a.count;
  )"), 42);
}

TEST(CclData, JsonBridge) {
  EXPECT_EQ(EvalStr("json_stringify({b: [1, true, null], a: 'x'});"),
            R"({"a":"x","b":[1,true,null]})");
  EXPECT_EQ(EvalNum("json_parse('{\"v\": 17}').v;"), 17);
  EXPECT_FALSE(Eval("json_parse('{bad');").ok());
}

TEST(CclBuiltins, Misc) {
  EXPECT_EQ(EvalNum("floor(3.7);"), 3);
  EXPECT_EQ(EvalNum("abs(-4);"), 4);
  EXPECT_EQ(EvalNum("min(2, 5) + max(2, 5);"), 7);
  EXPECT_EQ(EvalStr("typeof([]);"), "array");
  EXPECT_EQ(EvalNum("num('42') + 1;"), 43);
}

TEST(CclErrors, SyntaxErrorsReported) {
  EXPECT_FALSE(Compile("let = 5;").ok());
  EXPECT_FALSE(Compile("if (x {").ok());
  EXPECT_FALSE(Compile("function () {}").ok());  // statement needs a name
  EXPECT_FALSE(Compile("let x = 1").ok());       // missing semicolon
  EXPECT_FALSE(Compile("1 ++ 2;").ok());
}

TEST(CclErrors, RuntimeErrorsCarryLineNumbers) {
  auto r = Eval("let x = 1;\nlet y = x / 0;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("ccl:2"), std::string::npos);
}

TEST(CclErrors, TypeErrors) {
  EXPECT_FALSE(Eval("1 + {};").ok());
  EXPECT_FALSE(Eval("'a' < 1;").ok());
  EXPECT_FALSE(Eval("null.x;").ok());
  EXPECT_FALSE(Eval("(3)(4);").ok());
  EXPECT_FALSE(Eval("[1,2]['x'];").ok());
}

TEST(CclLimits, InfiniteLoopAborted) {
  auto r = Eval("while (true) { }");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kAborted);
}

TEST(CclLimits, DeepRecursionAborted) {
  auto r = Eval("function f(n) { return f(n + 1); } f(0);");
  EXPECT_FALSE(r.ok());
}

TEST(CclInterop, HostGlobalsAndNatives) {
  auto prog = Compile(R"(
    function describe() { return greeting + ' ' + double(21); }
  )");
  ASSERT_TRUE(prog.ok());
  Interpreter interp;
  interp.SetGlobal("greeting", Value("hello"));
  interp.SetGlobal("double",
                   Value(NativeFn([](std::vector<Value>& args) -> Result<Value> {
                     return Value(args.at(0).AsNumber() * 2);
                   })));
  ASSERT_TRUE(interp.Run(*prog).ok());
  auto r = interp.Call("describe", {});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->AsString(), "hello 42");
}

TEST(CclInterop, CallWithArguments) {
  auto prog = Compile(R"(
    function resolve(proposal, votes) {
      let yes = 0;
      for (let m of votes) { if (votes[m]) { yes += 1; } }
      return yes * 2 > proposal.total ? 'Accepted' : 'Open';
    }
  )");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  Interpreter interp;
  ASSERT_TRUE(interp.Run(*prog).ok());

  Object votes{{"m0", Value(true)}, {"m1", Value(true)}, {"m2", Value(false)}};
  Object proposal{{"total", Value(3)}};
  auto r = interp.Call("resolve", {Value(proposal), Value(votes)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->AsString(), "Accepted");
}

TEST(CclInterop, NativeErrorPropagates) {
  auto prog = Compile("function f() { return fail(); }");
  ASSERT_TRUE(prog.ok());
  Interpreter interp;
  interp.SetGlobal("fail",
                   Value(NativeFn([](std::vector<Value>&) -> Result<Value> {
                     return Status::PermissionDenied("nope");
                   })));
  ASSERT_TRUE(interp.Run(*prog).ok());
  auto r = interp.Call("f", {});
  EXPECT_FALSE(r.ok());
}

TEST(CclInterop, BudgetResetsBetweenCalls) {
  InterpOptions opts;
  opts.max_steps = 5000;
  Interpreter interp(opts);
  auto prog = Compile(R"(
    function work() {
      let x = 0;
      for (let i = 0; i < 100; i += 1) { x += i; }
      return x;
    }
  )");
  ASSERT_TRUE(prog.ok());
  ASSERT_TRUE(interp.Run(*prog).ok());
  for (int i = 0; i < 50; ++i) {
    interp.ResetBudget();
    ASSERT_TRUE(interp.Call("work", {}).ok()) << i;
  }
}

TEST(CclComments, BothStylesIgnored) {
  EXPECT_EQ(EvalNum(R"(
    // line comment
    let x = 1; /* block
    comment */ let y = 2;
    x + y;
  )"), 3);
}

// A realistic constitution-shaped script (paper Listing 1 analogue).
TEST(CclRealistic, ConstitutionActions) {
  auto prog = Compile(R"(
    function resolve(proposal, member_count, ballots) {
      let votes_for = 0;
      for (let id of ballots) {
        if (ballots[id] == true) { votes_for += 1; }
      }
      if (votes_for * 2 > member_count) { return 'Accepted'; }
      return 'Open';
    }

    function validate_add_node_code(args) {
      if (typeof(args.code_id) != 'string') { return 'bad code_id'; }
      return '';
    }
  )");
  ASSERT_TRUE(prog.ok()) << prog.status().ToString();
  Interpreter interp;
  ASSERT_TRUE(interp.Run(*prog).ok());

  Object ballots{{"m0", Value(true)}, {"m1", Value(false)}};
  auto open = interp.Call("resolve", {Value(Object{}), Value(3),
                                      Value(ballots)});
  ASSERT_TRUE(open.ok());
  EXPECT_EQ(open->AsString(), "Open");

  ballots["m2"] = Value(true);
  auto accepted = interp.Call("resolve", {Value(Object{}), Value(3),
                                          Value(ballots)});
  ASSERT_TRUE(accepted.ok());
  EXPECT_EQ(accepted->AsString(), "Accepted");

  auto bad = interp.Call("validate_add_node_code",
                         {Value(Object{{"code_id", Value(42)}})});
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->AsString(), "bad code_id");
}

}  // namespace
}  // namespace ccf::script
