// Host transport unit tests (loopback TCP): framing, client-session
// delivery and reply, node-link hello/reconnect, and ring-backpressure
// parking. No enclave involved — the deliver callback stands in for the
// host-to-enclave ring.

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "host/tcp.h"
#include "host/ticker.h"
#include "host/transport.h"

namespace ccf::host {
namespace {

// ------------------------------------------------------------- framing

TEST(Framing, RoundTripAndPartials) {
  Bytes wire;
  AppendFrame(&wire, ToBytes("alpha"));
  AppendFrame(&wire, ToBytes(""));
  AppendFrame(&wire, ToBytes("beta"));

  // Feed the wire bytes one at a time: frames must pop out exactly when
  // complete, independent of segmentation.
  Bytes buf;
  std::vector<Bytes> frames;
  for (uint8_t b : wire) {
    buf.push_back(b);
    ASSERT_TRUE(ExtractFrames(&buf, &frames));
  }
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_EQ(ToString(frames[0]), "alpha");
  EXPECT_EQ(ToString(frames[1]), "");
  EXPECT_EQ(ToString(frames[2]), "beta");
  EXPECT_TRUE(buf.empty());
}

TEST(Framing, OversizedFrameRejected) {
  Bytes buf = {0xff, 0xff, 0xff, 0x7f};  // ~2GB length prefix
  std::vector<Bytes> frames;
  EXPECT_FALSE(ExtractFrames(&buf, &frames));
}

// --------------------------------------------------- raw client helper

// A deliberately dumb blocking TCP client: the transport under test is
// the non-blocking side.
class RawClient {
 public:
  bool Connect(uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) ==
           0;
  }
  ~RawClient() { Close(); }
  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  bool SendRaw(ByteSpan wire) {
    size_t off = 0;
    while (off < wire.size()) {
      ssize_t n = write(fd_, wire.data() + off, wire.size() - off);
      if (n <= 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  }

  bool SendFrame(const std::string& payload) {
    Bytes wire;
    AppendFrame(&wire, ToBytes(payload));
    return SendRaw(wire);
  }

  // Reads until one frame is complete or the timeout expires. Returns
  // nullopt on EOF/timeout.
  std::optional<std::string> ReadFrame(int timeout_ms = 2000) {
    uint64_t deadline = SteadyNowMs() + static_cast<uint64_t>(timeout_ms);
    std::vector<Bytes> frames;
    for (;;) {
      if (!ExtractFrames(&buf_, &frames)) return std::nullopt;
      if (!frames.empty()) return ToString(frames.front());
      uint64_t now = SteadyNowMs();
      if (now >= deadline) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      if (poll(&pfd, 1, static_cast<int>(deadline - now)) <= 0) continue;
      uint8_t tmp[4096];
      ssize_t n = read(fd_, tmp, sizeof(tmp));
      if (n <= 0) return std::nullopt;
      buf_.insert(buf_.end(), tmp, tmp + n);
    }
  }

  // True if the peer closed the connection within the timeout.
  bool WaitForClose(int timeout_ms = 2000) {
    pollfd pfd{fd_, POLLIN, 0};
    uint64_t deadline = SteadyNowMs() + static_cast<uint64_t>(timeout_ms);
    for (;;) {
      uint64_t now = SteadyNowMs();
      if (now >= deadline) return false;
      if (poll(&pfd, 1, static_cast<int>(deadline - now)) <= 0) continue;
      uint8_t tmp[4096];
      ssize_t n = read(fd_, tmp, sizeof(tmp));
      if (n == 0) return true;
      if (n < 0) return true;
    }
  }

 private:
  int fd_ = -1;
  Bytes buf_;
};

// Thread-safe record of what the deliver callback saw.
struct Delivered {
  std::mutex mu;
  std::vector<std::pair<std::string, std::string>> items;
  std::atomic<bool> accept{true};

  bool Deliver(const std::string& from, ByteSpan data) {
    if (!accept.load()) return false;
    std::lock_guard<std::mutex> lk(mu);
    items.emplace_back(from, ToString(data));
    return true;
  }
  size_t Count() {
    std::lock_guard<std::mutex> lk(mu);
    return items.size();
  }
  std::pair<std::string, std::string> At(size_t i) {
    std::lock_guard<std::mutex> lk(mu);
    return items.at(i);
  }
};

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 3000) {
  uint64_t deadline = SteadyNowMs() + static_cast<uint64_t>(timeout_ms);
  while (SteadyNowMs() < deadline) {
    if (pred()) return true;
    usleep(1000);
  }
  return pred();
}

// ------------------------------------------------------ client sessions

TEST(LiveTransport, ClientSessionDeliverReplyAndDisconnect) {
  Delivered delivered;
  std::mutex dmu;
  std::vector<std::string> disconnects;
  TransportConfig cfg;
  cfg.node_id = "n0";
  LiveTransport t(
      cfg,
      [&](const std::string& from, ByteSpan data) {
        return delivered.Deliver(from, data);
      },
      [&](const std::string& peer) {
        std::lock_guard<std::mutex> lk(dmu);
        disconnects.push_back(peer);
        return true;
      });
  ASSERT_TRUE(t.Start().ok());
  ASSERT_NE(t.rpc_port(), 0);

  RawClient c;
  ASSERT_TRUE(c.Connect(t.rpc_port()));
  ASSERT_TRUE(c.SendFrame("ping"));
  ASSERT_TRUE(WaitFor([&] { return delivered.Count() == 1; }));
  auto [from, payload] = delivered.At(0);
  EXPECT_EQ(from, "tcp:1");
  EXPECT_EQ(payload, "ping");

  t.NetSend("tcp:1", ToBytes("pong"));
  auto reply = c.ReadFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "pong");

  c.Close();
  ASSERT_TRUE(WaitFor([&] {
    std::lock_guard<std::mutex> lk(dmu);
    return disconnects.size() == 1 && disconnects[0] == "tcp:1";
  }));
  t.Stop();
}

TEST(LiveTransport, EnclaveInitiatedCloseReachesClient) {
  Delivered delivered;
  TransportConfig cfg;
  cfg.node_id = "n0";
  LiveTransport t(
      cfg,
      [&](const std::string& from, ByteSpan data) {
        return delivered.Deliver(from, data);
      },
      [](const std::string&) { return true; });
  ASSERT_TRUE(t.Start().ok());

  RawClient c;
  ASSERT_TRUE(c.Connect(t.rpc_port()));
  ASSERT_TRUE(c.SendFrame("hi"));
  ASSERT_TRUE(WaitFor([&] { return delivered.Count() == 1; }));
  // Flush a goodbye then close, as the enclave does for connection: close.
  t.NetSend("tcp:1", ToBytes("bye"));
  t.CloseSession("tcp:1");
  auto reply = c.ReadFrame();
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(*reply, "bye");
  EXPECT_TRUE(c.WaitForClose());
  t.Stop();
}

TEST(LiveTransport, OversizedInboundFrameClosesConnection) {
  Delivered delivered;
  TransportConfig cfg;
  cfg.node_id = "n0";
  LiveTransport t(
      cfg,
      [&](const std::string& from, ByteSpan data) {
        return delivered.Deliver(from, data);
      },
      [](const std::string&) { return true; });
  ASSERT_TRUE(t.Start().ok());

  RawClient c;
  ASSERT_TRUE(c.Connect(t.rpc_port()));
  // A length prefix beyond kMaxFrameSize must get the connection closed
  // before any allocation approaching that size happens.
  Bytes huge_header = {0xff, 0xff, 0xff, 0x7f};
  ASSERT_TRUE(c.SendRaw(huge_header));
  EXPECT_TRUE(c.WaitForClose());
  EXPECT_EQ(delivered.Count(), 0u);
  t.Stop();
}

// ------------------------------------------------------ node links

TEST(LiveTransport, NodeLinkHelloRoutingAndReconnect) {
  Delivered got_a, got_b;
  TransportConfig ca;
  ca.node_id = "a";
  auto ta = std::make_unique<LiveTransport>(
      ca,
      [&](const std::string& from, ByteSpan data) {
        return got_a.Deliver(from, data);
      },
      [](const std::string&) { return true; });
  ASSERT_TRUE(ta->Start().ok());
  uint16_t a_node_port = ta->node_port();

  TransportConfig cb;
  cb.node_id = "b";
  cb.peers["a"] = "127.0.0.1:" + std::to_string(a_node_port);
  cb.backoff_min_ms = 10;
  cb.backoff_max_ms = 50;
  LiveTransport tb(
      cb,
      [&](const std::string& from, ByteSpan data) {
        return got_b.Deliver(from, data);
      },
      [](const std::string&) { return true; });
  ASSERT_TRUE(tb.Start().ok());

  // b -> a: queued until the dialled link passes the hello exchange.
  tb.NetSend("a", ToBytes("from-b"));
  ASSERT_TRUE(WaitFor([&] { return got_a.Count() == 1; }));
  EXPECT_EQ(got_a.At(0).first, "b");
  EXPECT_EQ(got_a.At(0).second, "from-b");

  // a -> b rides the accepted link (a learned "b" from the hello).
  ta->NetSend("b", ToBytes("from-a"));
  ASSERT_TRUE(WaitFor([&] { return got_b.Count() == 1; }));
  EXPECT_EQ(got_b.At(0).first, "a");
  EXPECT_EQ(got_b.At(0).second, "from-a");

  // Kill a; traffic queues; restart a on the same port; the queued frame
  // arrives after redial + hello. (SO_REUSEADDR makes the rebind safe.)
  ta->Stop();
  ta.reset();
  tb.NetSend("a", ToBytes("after-crash"));
  TransportConfig ca2;
  ca2.node_id = "a";
  ca2.node_port = a_node_port;
  LiveTransport ta2(
      ca2,
      [&](const std::string& from, ByteSpan data) {
        return got_a.Deliver(from, data);
      },
      [](const std::string&) { return true; });
  ASSERT_TRUE(ta2.Start().ok());
  ASSERT_TRUE(WaitFor([&] { return got_a.Count() == 2; }, 6000));
  EXPECT_EQ(got_a.At(1).second, "after-crash");
  tb.Stop();
  ta2.Stop();
}

// ------------------------------------------------------ backpressure

TEST(LiveTransport, FullRingParksConnectionWithoutLoss) {
  Delivered delivered;
  delivered.accept.store(false);  // simulate a full host->enclave ring
  TransportConfig cfg;
  cfg.node_id = "n0";
  LiveTransport t(
      cfg,
      [&](const std::string& from, ByteSpan data) {
        return delivered.Deliver(from, data);
      },
      [](const std::string&) { return true; });
  ASSERT_TRUE(t.Start().ok());

  RawClient c;
  ASSERT_TRUE(c.Connect(t.rpc_port()));
  constexpr int kFrames = 50;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_TRUE(c.SendFrame("m" + std::to_string(i)));
  }
  // The connection parks: frames wait, none are dropped or delivered.
  ASSERT_TRUE(WaitFor([&] { return t.parked_frames_total() > 0; }));
  EXPECT_EQ(delivered.Count(), 0u);

  delivered.accept.store(true);  // ring drains
  ASSERT_TRUE(WaitFor([&] { return delivered.Count() == kFrames; }));
  for (int i = 0; i < kFrames; ++i) {
    EXPECT_EQ(delivered.At(i).second, "m" + std::to_string(i));  // in order
  }
  t.Stop();
}

}  // namespace
}  // namespace ccf::host
