// Test harness wiring consensus::RaftNode into the deterministic
// simulation environment, with invariant tracking used by the consensus
// property tests.

#ifndef CCF_TESTS_RAFT_HARNESS_H_
#define CCF_TESTS_RAFT_HARNESS_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "consensus/raft.h"
#include "crypto/sha256.h"
#include "sim/environment.h"
#include "sim/invariants.h"

namespace ccf::testing {

using consensus::Configuration;
using consensus::LogEntry;
using consensus::Message;
using consensus::NodeId;
using consensus::RaftConfig;
using consensus::RaftNode;
using consensus::Role;

inline RaftConfig FastRaftConfig(uint64_t seed = 0) {
  RaftConfig cfg;
  cfg.election_timeout_min_ms = 50;
  cfg.election_timeout_max_ms = 100;
  cfg.heartbeat_interval_ms = 10;
  cfg.primary_quiesce_timeout_ms = 200;
  cfg.seed = seed;
  return cfg;
}

// A consensus node in the simulation. Emits a signature transaction every
// `signature_interval` entries and immediately upon becoming primary,
// standing in for the node layer.
class RaftTestNode : public consensus::RaftCallbacks {
 public:
  RaftTestNode(NodeId id, RaftConfig cfg, std::set<NodeId> initial,
               bool start_as_primary, sim::Environment* env)
      : id_(id), env_(env) {
    raft_ = std::make_unique<RaftNode>(id, cfg, std::move(initial),
                                       start_as_primary, this);
    env_->Register(
        id,
        [this](const std::string& from, ByteSpan bytes) {
          auto msg = Message::Deserialize(bytes);
          if (msg.ok()) raft_->Receive(*msg, env_->now_ms());
          (void)from;
        },
        [this](uint64_t now) {
          if (need_signature_ && raft_->IsPrimary()) {
            need_signature_ = false;
            ReplicateSignature();
          }
          raft_->Tick(now);
        });
    if (start_as_primary) need_signature_ = true;
  }

  // A node joining from a snapshot base (paper §4.4).
  RaftTestNode(NodeId id, RaftConfig cfg, uint64_t base_view,
               uint64_t base_seqno, std::vector<Configuration> configs,
               sim::Environment* env)
      : id_(id), env_(env) {
    raft_ = std::make_unique<RaftNode>(RaftNode::Joiner(
        id, cfg, base_view, base_seqno, std::move(configs), this));
    env_->Register(
        id,
        [this](const std::string& from, ByteSpan bytes) {
          auto msg = Message::Deserialize(bytes);
          if (msg.ok()) raft_->Receive(*msg, env_->now_ms());
          (void)from;
        },
        [this](uint64_t now) {
          if (need_signature_ && raft_->IsPrimary()) {
            need_signature_ = false;
            ReplicateSignature();
          }
          raft_->Tick(now);
        });
  }

  RaftNode& raft() { return *raft_; }
  const RaftNode& raft() const { return *raft_; }
  const NodeId& id() const { return id_; }

  // --------------------------------------------------- primary helpers

  Status ReplicateUser(const std::string& payload) {
    auto data = std::make_shared<const Bytes>(ToBytes(payload));
    Status s = raft_->Replicate(raft_->last_seqno() + 1, data,
                                /*is_signature=*/false);
    if (s.ok()) {
      ++entries_since_signature_;
      if (entries_since_signature_ >= signature_interval_) {
        ReplicateSignature();
      }
    }
    return s;
  }

  Status ReplicateSignature() {
    auto data = std::make_shared<const Bytes>(
        ToBytes("sig@" + std::to_string(raft_->last_seqno() + 1)));
    Status s = raft_->Replicate(raft_->last_seqno() + 1, data,
                                /*is_signature=*/true);
    if (s.ok()) entries_since_signature_ = 0;
    return s;
  }

  Status ReplicateReconfig(std::set<NodeId> nodes) {
    uint64_t seqno = raft_->last_seqno() + 1;
    auto data = std::make_shared<const Bytes>(ToBytes("reconfig"));
    Status s = raft_->Replicate(seqno, data, /*is_signature=*/false,
                                Configuration{seqno, std::move(nodes)});
    if (s.ok()) ReplicateSignature();
    return s;
  }

  void set_signature_interval(size_t n) { signature_interval_ = n; }

  // ------------------------------------------------- recorded history

  // Commit records: seqno -> (view, payload digest). Monotone, append-only.
  const std::map<uint64_t, std::pair<uint64_t, crypto::Sha256Digest>>&
  committed() const {
    return committed_;
  }
  size_t rollbacks() const { return rollbacks_; }
  const std::vector<std::pair<Role, uint64_t>>& role_changes() const {
    return role_changes_;
  }
  bool committed_record_violated() const { return committed_violated_; }

  // ------------------------------------------------ RaftCallbacks

  void OnAppend(const LogEntry&) override {}
  void OnRollback(uint64_t) override { ++rollbacks_; }
  void OnCommit(uint64_t seqno) override {
    for (uint64_t s = last_commit_recorded_ + 1; s <= seqno; ++s) {
      const LogEntry* e = raft_->GetLogEntry(s);
      if (e == nullptr) continue;  // compacted on a joiner
      auto digest = crypto::Sha256::Hash(*e->data);
      auto [it, inserted] = committed_.emplace(
          s, std::make_pair(e->view, digest));
      if (!inserted &&
          (it->second.first != e->view || it->second.second != digest)) {
        committed_violated_ = true;  // a committed entry changed!
      }
    }
    last_commit_recorded_ = seqno;
  }
  void OnRoleChange(Role role, uint64_t view) override {
    role_changes_.emplace_back(role, view);
    if (role == Role::kPrimary) need_signature_ = true;
  }
  void Send(const NodeId& to, const Message& msg) override {
    env_->Send(id_, to, msg.Serialize());
  }

 private:
  NodeId id_;
  sim::Environment* env_;
  std::unique_ptr<RaftNode> raft_;
  size_t signature_interval_ = 5;
  size_t entries_since_signature_ = 0;
  bool need_signature_ = false;

  std::map<uint64_t, std::pair<uint64_t, crypto::Sha256Digest>> committed_;
  uint64_t last_commit_recorded_ = 0;
  size_t rollbacks_ = 0;
  bool committed_violated_ = false;
  std::vector<std::pair<Role, uint64_t>> role_changes_;
};

// A cluster of RaftTestNodes over one simulated network.
class RaftCluster {
 public:
  RaftCluster(int n, sim::EnvOptions env_options = {}, uint64_t seed = 0)
      : env_(env_options) {
    std::set<NodeId> initial;
    for (int i = 0; i < n; ++i) initial.insert(Name(i));
    for (int i = 0; i < n; ++i) {
      nodes_[Name(i)] = std::make_unique<RaftTestNode>(
          Name(i), FastRaftConfig(seed + i), initial,
          /*start_as_primary=*/false, &env_);
    }
  }

  static NodeId Name(int i) { return "n" + std::to_string(i); }

  sim::Environment& env() { return env_; }
  RaftTestNode& node(int i) { return *nodes_.at(Name(i)); }
  RaftTestNode& node(const NodeId& id) { return *nodes_.at(id); }
  std::map<NodeId, std::unique_ptr<RaftTestNode>>& nodes() { return nodes_; }

  void AddNode(const NodeId& id, std::unique_ptr<RaftTestNode> node) {
    nodes_[id] = std::move(node);
  }

  // Returns the live primary with the highest view, or nullptr.
  RaftTestNode* GetPrimary() {
    RaftTestNode* best = nullptr;
    for (auto& [id, node] : nodes_) {
      if (!env_.IsUp(id)) continue;
      if (node->raft().IsPrimary() &&
          (best == nullptr || node->raft().view() > best->raft().view())) {
        best = node.get();
      }
    }
    return best;
  }

  // Runs until a primary exists that a majority of live nodes follow.
  RaftTestNode* WaitForPrimary(uint64_t timeout_ms = 5000) {
    RaftTestNode* primary = nullptr;
    env_.RunUntil(
        [&] {
          primary = GetPrimary();
          if (primary == nullptr) return false;
          // A majority in the primary's current config agrees on the view.
          size_t agree = 0;
          const auto& cfg = primary->raft().active_configs().front();
          for (const NodeId& id : cfg.nodes) {
            auto it = nodes_.find(id);
            if (it == nodes_.end() || !env_.IsUp(id)) continue;
            if (it->second->raft().view() == primary->raft().view()) ++agree;
          }
          return agree >= cfg.nodes.size() / 2 + 1;
        },
        timeout_ms);
    return GetPrimary();
  }

  // Runs until `seqno` is committed on all live nodes in the current config.
  bool WaitForCommitEverywhere(uint64_t seqno, uint64_t timeout_ms = 5000) {
    return env_.RunUntil(
        [&] {
          for (auto& [id, node] : nodes_) {
            if (!env_.IsUp(id)) continue;
            if (!node->raft().InActiveConfig()) continue;
            if (node->raft().commit_seqno() < seqno) return false;
          }
          return true;
        },
        timeout_ms);
  }

  // ------------------------------------------------------- invariants

  // Committed prefix agreement: any two nodes' committed records agree.
  bool CommittedPrefixesAgree() const {
    std::map<uint64_t, std::pair<uint64_t, crypto::Sha256Digest>> global;
    for (const auto& [id, node] : nodes_) {
      if (node->committed_record_violated()) return false;
      for (const auto& [seqno, rec] : node->committed()) {
        auto [it, inserted] = global.emplace(seqno, rec);
        if (!inserted && it->second != rec) return false;
      }
    }
    return true;
  }

  // At most one node ever became primary in any given view.
  bool AtMostOnePrimaryPerView() const {
    std::map<uint64_t, NodeId> primaries;
    for (const auto& [id, node] : nodes_) {
      for (const auto& [role, view] : node->role_changes()) {
        if (role != Role::kPrimary) continue;
        auto [it, inserted] = primaries.emplace(view, id);
        if (!inserted && it->second != id) return false;
      }
    }
    return true;
  }

  // Log matching: if two logs contain an entry with the same (view, seqno),
  // the payloads match.
  bool LogsMatch() const {
    std::map<std::pair<uint64_t, uint64_t>, crypto::Sha256Digest> seen;
    for (const auto& [id, node] : nodes_) {
      const auto& raft = node->raft();
      for (uint64_t s = 1; s <= raft.last_seqno(); ++s) {
        const LogEntry* e = raft.GetLogEntry(s);
        if (e == nullptr) continue;
        auto key = std::make_pair(e->view, e->seqno);
        auto digest = crypto::Sha256::Hash(*e->data);
        auto [it, inserted] = seen.emplace(key, digest);
        if (!inserted && it->second != digest) return false;
      }
    }
    return true;
  }

  bool AllInvariantsHold() const {
    return CommittedPrefixesAgree() && AtMostOnePrimaryPerView() &&
           LogsMatch();
  }

  // Wires a per-step InvariantChecker over every current node and attaches
  // it to the environment. Call again after AddNode to track newcomers.
  sim::InvariantChecker& EnableInvariantChecker() {
    for (auto& [id, node] : nodes_) {
      checker_.Track(id, &node->raft());
    }
    checker_.Attach(&env_);
    return checker_;
  }
  sim::InvariantChecker& checker() { return checker_; }

 private:
  sim::Environment env_;
  std::map<NodeId, std::unique_ptr<RaftTestNode>> nodes_;
  sim::InvariantChecker checker_;
};

}  // namespace ccf::testing

#endif  // CCF_TESTS_RAFT_HARNESS_H_
