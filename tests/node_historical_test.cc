// Historical queries and asynchronous indexing (paper §3.4): the enclave
// fetches committed entries back from the untrusted host ledger over the
// ringbuffer boundary, re-verifies them against signed Merkle roots, and
// serves point-in-time reads from a bounded cache; an in-enclave indexer
// feeds committed entries to application strategies under a per-tick
// budget.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/hex.h"
#include "merkle/receipt.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

// Writes `msg` under `id` via /app/log and returns the assigned seqno.
uint64_t WriteLog(node::Client* client, int64_t id, const std::string& msg) {
  json::Object body;
  body["id"] = id;
  body["msg"] = msg;
  auto resp = client->PostJson("/app/log", json::Value(std::move(body)));
  EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  auto txid = node::Client::TxIdOf(*resp);
  EXPECT_TRUE(txid.has_value());
  return txid.has_value() ? txid->second : 0;
}

// Polls a historical endpoint until it stops answering 202 Accepted.
Result<http::Response> PollHistorical(ServiceHarness* h, node::Client* client,
                                      const std::string& path,
                                      uint64_t timeout_ms = 8000) {
  Result<http::Response> last = Status::Unavailable("no response yet");
  h->env().RunUntil(
      [&] {
        last = client->Get(path);
        return last.ok() && last->status != 202;
      },
      timeout_ms);
  return last;
}

// Waits until everything appended so far is committed and covered by a
// signed root (so receipts exist for the full prefix).
bool WaitReceiptable(ServiceHarness* h, node::Node* n, uint64_t seqno,
                     uint64_t timeout_ms = 8000) {
  return h->env().RunUntil([&] { return n->ReceiptableUpto() >= seqno; },
                           timeout_ms);
}

void ExpectReceiptVerifies(const json::Value& obj,
                           const crypto::PublicKeyBytes& service_identity) {
  auto receipt_bytes = HexDecode(obj.GetString("receipt"));
  ASSERT_TRUE(receipt_bytes.ok());
  auto receipt = merkle::Receipt::Deserialize(*receipt_bytes);
  ASSERT_TRUE(receipt.ok()) << receipt.status().ToString();
  EXPECT_TRUE(receipt->Verify(service_identity).ok());
}

TEST(HistoricalQuery, PointInTimeReadOfOverwrittenKey) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t s1 = WriteLog(client, 5, "v1");
  ASSERT_GT(s1, 0u);
  // Pad with writes to other ids, then overwrite.
  WriteLog(client, 6, "other");
  uint64_t s2 = WriteLog(client, 5, "v2");
  ASSERT_GT(s2, s1);
  ASSERT_TRUE(WaitReceiptable(&h, n0, s2));

  // As-of s1: the original value, with a verifiable receipt.
  auto old_resp = PollHistorical(
      &h, client, "/app/log/historical?id=5&seqno=" + std::to_string(s1));
  ASSERT_TRUE(old_resp.ok()) << old_resp.status().ToString();
  ASSERT_EQ(old_resp->status, 200) << ToString(old_resp->body);
  auto old_body = json::Parse(ToString(old_resp->body));
  ASSERT_TRUE(old_body.ok());
  EXPECT_EQ(old_body->GetString("msg"), "v1");
  EXPECT_EQ(old_body->GetInt("seqno"), static_cast<int64_t>(s1));
  ExpectReceiptVerifies(*old_body, n0->service_identity());

  // Without a seqno: the latest receiptable write.
  auto new_resp = PollHistorical(&h, client, "/app/log/historical?id=5");
  ASSERT_TRUE(new_resp.ok());
  ASSERT_EQ(new_resp->status, 200) << ToString(new_resp->body);
  auto new_body = json::Parse(ToString(new_resp->body));
  ASSERT_TRUE(new_body.ok());
  EXPECT_EQ(new_body->GetString("msg"), "v2");
  ExpectReceiptVerifies(*new_body, n0->service_identity());

  // The data actually crossed the host boundary and was re-verified.
  EXPECT_GT(n0->historical_counters().host_fetch_requests, 0u);
  EXPECT_GT(n0->historical_counters().entries_verified, 0u);
  EXPECT_TRUE(n0->historical().AuditCache(n0->service_identity()).ok());
}

// The acceptance scenario: a range query reaching far outside the
// enclave's retained-roots window is served by fetching entries back from
// the host and re-verifying each against a signed Merkle root.
TEST(HistoricalQuery, RangeOutsideRetainedRootsWindow) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->kv_retained_root_cap = 2;  // in-enclave window: ~2 recent roots
  });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  std::vector<uint64_t> writes;
  uint64_t last = 0;
  for (int i = 0; i < 12; ++i) {
    writes.push_back(WriteLog(client, 7, "msg-" + std::to_string(i)));
    last = WriteLog(client, 1000 + i, "padding");  // other ids interleave
  }
  ASSERT_TRUE(WaitReceiptable(&h, n0, last));
  uint64_t upto = n0->ReceiptableUpto();

  auto resp = PollHistorical(&h, client,
                             "/app/log/historical/range?id=7&from=1&to=" +
                                 std::to_string(upto));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, 200) << ToString(resp->body);
  auto body = json::Parse(ToString(resp->body));
  ASSERT_TRUE(body.ok());
  const json::Value* entries = body->Get("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->AsArray().size(), writes.size());
  for (size_t i = 0; i < writes.size(); ++i) {
    const json::Value& e = entries->AsArray()[i];
    EXPECT_EQ(e.GetInt("seqno"), static_cast<int64_t>(writes[i]));
    EXPECT_EQ(e.GetString("msg"), "msg-" + std::to_string(i));
    ExpectReceiptVerifies(e, n0->service_identity());
  }

  // The whole range crossed the host boundary: every fetched entry was
  // re-verified in the enclave, none rejected.
  EXPECT_GT(n0->historical_counters().host_fetch_requests, 0u);
  EXPECT_GE(n0->historical_counters().entries_verified, upto);
  EXPECT_EQ(n0->historical_counters().entries_rejected, 0u);
  EXPECT_TRUE(n0->historical().AuditCache(n0->service_identity()).ok());
}

TEST(HistoricalQuery, CacheIsLruBoundedAndRefetches) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->historical.cache_max_requests = 2;
  });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t last = 0;
  for (int i = 0; i < 12; ++i) last = WriteLog(client, 7, "m");
  ASSERT_TRUE(WaitReceiptable(&h, n0, last));
  uint64_t upto = n0->ReceiptableUpto();
  ASSERT_GE(upto, 9u);

  // Three distinct ranges: the third completion must evict the oldest.
  std::vector<std::string> paths = {
      "/app/log/historical/range?id=7&from=1&to=3",
      "/app/log/historical/range?id=7&from=4&to=6",
      "/app/log/historical/range?id=7&from=7&to=9",
  };
  for (const std::string& p : paths) {
    auto resp = PollHistorical(&h, client, p);
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status, 200) << ToString(resp->body);
  }
  EXPECT_LE(n0->historical().cached_requests(), 2u);
  EXPECT_GE(n0->historical().stats().evictions, 1u);

  // The evicted range is gone from the cache but transparently refetched.
  uint64_t fetches_before = n0->historical().stats().fetches;
  auto again = PollHistorical(&h, client, paths[0]);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 200);
  EXPECT_GT(n0->historical().stats().fetches, fetches_before);
  EXPECT_TRUE(n0->historical().AuditCache(n0->service_identity()).ok());
}

TEST(HistoricalQuery, OverwideRangeFailsFast) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak(
      [](node::NodeConfig* cfg) { cfg->historical.max_range = 4; });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t last = 0;
  for (int i = 0; i < 10; ++i) last = WriteLog(client, 7, "m");
  ASSERT_TRUE(WaitReceiptable(&h, n0, last));

  auto resp = PollHistorical(&h, client,
                             "/app/log/historical/range?id=7&from=1&to=" +
                                 std::to_string(n0->ReceiptableUpto()));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 503);  // rejected immediately, nothing cached
  EXPECT_EQ(n0->historical().cached_requests(), 0u);
}

TEST(AsyncIndexer, BackpressureBudgetAndCatchUp) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->historical.index_entries_per_tick = 2;
  });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t last = 0;
  for (int i = 0; i < 30; ++i) last = WriteLog(client, i % 3, "m");
  ASSERT_TRUE(h.env().RunUntil([&] { return n0->commit_seqno() >= last; },
                               8000));
  // The indexer drains its backlog and catches up with commit.
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->indexer().Lag(n0->commit_seqno()) == 0; }, 8000));
  EXPECT_GE(n0->indexer().indexed_upto(), last);
  // The per-tick budget was respected throughout.
  EXPECT_LE(n0->indexer().stats().max_fed_per_tick, 2u);
  EXPECT_GE(n0->indexer().stats().entries_fed, 30u);
  EXPECT_EQ(n0->indexer().stats().decode_failures, 0u);
}

// Receipt edge cases around signed-root boundaries (satellite of the
// historical subsystem: fetched entries are verified with these receipts).
TEST(ReceiptEdgeCases, EverySeqnoUpToBoundaryVerifies) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t last = 0;
  for (int i = 0; i < 12; ++i) last = WriteLog(client, i, "m");
  ASSERT_TRUE(WaitReceiptable(&h, n0, last));
  uint64_t upto = n0->ReceiptableUpto();
  ASSERT_GE(upto, last);

  // Receipts exist and verify for the entire receiptable prefix -- in
  // particular for signature-carrying entries and for the entry exactly at
  // the signed-root boundary (seqno == root.seqno - 1).
  for (uint64_t s = 1; s <= upto; ++s) {
    auto resp = client->Get("/node/receipt?seqno=" + std::to_string(s));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status, 200) << "seqno " << s << ": "
                                 << ToString(resp->body);
    auto body = json::Parse(ToString(resp->body));
    ASSERT_TRUE(body.ok());
    EXPECT_GT(body->GetInt("root_seqno"), static_cast<int64_t>(s));
    ExpectReceiptVerifies(*body, n0->service_identity());
  }
}

TEST(ReceiptEdgeCases, SeqnoAheadOfLastSignedRootIs404) {
  ServiceHarness h;
  h.AddUser("user0");
  // Only the genesis-view signature will ever fire: push the periodic
  // intervals out of reach so no later root appears mid-test.
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->signature_interval_txs = 100000;
    cfg->signature_interval_ms = 100000000;
  });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  // Commit points are signature transactions only (paper §4.1), and a
  // signed root covers the prefix *below* the signature entry -- so the
  // last committed seqno (the signature tx itself) is always ahead of the
  // last signed root.
  uint64_t commit = n0->commit_seqno();
  ASSERT_GT(commit, 0u);
  uint64_t upto = n0->ReceiptableUpto();
  ASSERT_LT(upto, commit);

  // Committed but not yet covered by a signed root: clean 404, not a
  // crash or a bogus receipt.
  auto resp = client->Get("/node/receipt?seqno=" + std::to_string(commit));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 404);

  // An appended-but-uncommitted write behaves the same.
  uint64_t last = WriteLog(client, 1, "m");
  ASSERT_GT(last, commit);
  auto uncommitted =
      client->Get("/node/receipt?seqno=" + std::to_string(last));
  ASSERT_TRUE(uncommitted.ok());
  EXPECT_EQ(uncommitted->status, 404);

  // Entirely out of range behaves the same.
  auto beyond = client->Get("/node/receipt?seqno=" +
                            std::to_string(n0->last_seqno() + 100));
  ASSERT_TRUE(beyond.ok());
  EXPECT_EQ(beyond->status, 404);

  // And the boundary itself still works: the largest receiptable seqno
  // has a verifying receipt.
  if (upto > 0) {
    auto ok_resp = client->Get("/node/receipt?seqno=" + std::to_string(upto));
    ASSERT_TRUE(ok_resp.ok());
    ASSERT_EQ(ok_resp->status, 200) << ToString(ok_resp->body);
    auto body = json::Parse(ToString(ok_resp->body));
    ASSERT_TRUE(body.ok());
    ExpectReceiptVerifies(*body, n0->service_identity());
  }
}

// Legacy clients that pass x-query-* headers instead of URL query strings
// keep working (the header is the fallback when the param is absent).
TEST(QueryParams, HeaderFallbackStillWorks) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  node::Client* client = h.UserClient("user0");
  WriteLog(client, 42, "via header");

  http::Request req;
  req.method = "GET";
  req.path = "/app/log";
  req.headers["x-query-id"] = "42";
  auto resp = client->Call(std::move(req));
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  ASSERT_EQ(resp->status, 200) << ToString(resp->body);
  auto body = json::Parse(ToString(resp->body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->GetString("msg"), "via header");

  // And when both are present, the URL query string wins.
  http::Request both;
  both.method = "GET";
  both.path = "/app/log?id=42";
  both.headers["x-query-id"] = "99999";
  auto resp2 = client->Call(std::move(both));
  ASSERT_TRUE(resp2.ok());
  EXPECT_EQ(resp2->status, 200) << ToString(resp2->body);
}

TEST(HistoricalTelemetry, NodeEndpointExposesCounters) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t last = 0;
  for (int i = 0; i < 6; ++i) last = WriteLog(client, 7, "m");
  ASSERT_TRUE(WaitReceiptable(&h, n0, last));
  auto hist = PollHistorical(&h, client, "/app/log/historical?id=7");
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->status, 200);

  auto resp = h.AnonymousClient()->Get("/node/historical");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  auto body = json::Parse(ToString(resp->body));
  ASSERT_TRUE(body.ok());
  EXPECT_GE(body->GetInt("cache_requests"), 1);
  EXPECT_GE(body->GetInt("cache_fetches"), 1);
  EXPECT_GE(body->GetInt("host_fetch_requests"), 1);
  EXPECT_GE(body->GetInt("entries_verified"), 1);
  EXPECT_GE(body->GetInt("receiptable_upto"), static_cast<int64_t>(last));
  EXPECT_EQ(body->GetInt("index_lag"), 0);
  EXPECT_GE(body->GetInt("indexed_upto"), static_cast<int64_t>(last));
}

// TTL: an untouched cached range expires and is dropped, freeing space.
TEST(HistoricalQuery, CacheEntryExpiresAfterTtl) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak(
      [](node::NodeConfig* cfg) { cfg->historical.cache_ttl_ms = 200; });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t last = 0;
  for (int i = 0; i < 6; ++i) last = WriteLog(client, 7, "m");
  ASSERT_TRUE(WaitReceiptable(&h, n0, last));
  auto resp = PollHistorical(&h, client, "/app/log/historical?id=7");
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  ASSERT_GE(n0->historical().cached_requests(), 1u);

  h.env().Step(500);  // well past the TTL, no touches
  EXPECT_EQ(n0->historical().cached_requests(), 0u);
  EXPECT_GE(n0->historical().stats().expired, 1u);
}

}  // namespace
}  // namespace ccf::testing
