#include <gtest/gtest.h>

#include "common/hex.h"
#include "gov/constitution.h"
#include "gov/proposals.h"
#include "gov/records.h"
#include "gov/shares.h"
#include "kv/tables.h"

namespace ccf::gov {
namespace {

namespace tables = kv::tables;

// A store bootstrapped with three members and the default constitution.
struct GovFixture {
  kv::Store store;
  crypto::KeyPair member_keys[3] = {
      crypto::KeyPair::FromSeed(ToBytes("m0")),
      crypto::KeyPair::FromSeed(ToBytes("m1")),
      crypto::KeyPair::FromSeed(ToBytes("m2")),
  };
  std::string member_ids[3];
  crypto::Drbg drbg{"gov-fixture", 0};

  GovFixture() {
    kv::Tx tx = store.BeginTx();
    tx.Handle(tables::kConstitution)
        ->PutStr(tables::kCurrentKey, DefaultConstitution());
    for (int i = 0; i < 3; ++i) {
      member_ids[i] = "member" + std::to_string(i);
      MemberInfo info;
      crypto::Certificate cert = crypto::IssueCertificate(
          member_ids[i], "member", member_keys[i].public_key(),
          member_keys[i], "");
      info.cert = cert.Serialize();
      info.encryption_key = member_keys[i].public_key();
      WriteRecord(tx.Handle(tables::kMembersCerts), member_ids[i],
                  info.ToJson());
    }
    ServiceInfo service;
    service.status = ServiceStatus::kOpening;
    service.cert = ToBytes("placeholder");
    WriteRecord(tx.Handle(tables::kServiceInfo), tables::kCurrentKey,
                service.ToJson());
    auto r = store.CommitTx(&tx);
    assert(r.ok());
  }

  json::Value MakeProposal(const std::string& action_name,
                           json::Object args) {
    json::Object action;
    action["name"] = action_name;
    action["args"] = std::move(args);
    json::Object proposal;
    proposal["actions"] = json::Array{json::Value(std::move(action))};
    return json::Value(std::move(proposal));
  }
};

const char kVoteYes[] = "function vote(proposal, proposer_id) { return true; }";
const char kVoteNo[] = "function vote(proposal, proposer_id) { return false; }";

TEST(Governance, ProposalAcceptedByMajority) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  json::Value proposal =
      f.MakeProposal("add_node_code", {{"code_id", json::Value("code-v2")}});

  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                           ToBytes("signed-req-0"));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  EXPECT_EQ(submitted->state, ProposalState::kOpen);
  std::string pid = submitted->proposal_id;

  // First yes vote: 1 of 3 < majority.
  auto v1 = ProposalManager::Vote(&tx, f.member_ids[0], pid, kVoteYes,
                                  ToBytes("signed-ballot-0"));
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->state, ProposalState::kOpen);
  // Not yet applied.
  EXPECT_FALSE(tx.Handle(tables::kNodesCodeIds)->HasStr("code-v2"));

  // Second yes vote: 2 of 3 = strict majority -> accepted and applied.
  auto v2 = ProposalManager::Vote(&tx, f.member_ids[1], pid, kVoteYes,
                                  ToBytes("signed-ballot-1"));
  ASSERT_TRUE(v2.ok()) << v2.status().ToString();
  EXPECT_EQ(v2->state, ProposalState::kAccepted);
  EXPECT_EQ(tx.Handle(tables::kNodesCodeIds)->GetStr("code-v2"),
            "AllowedToJoin");

  // Info records final votes (paper Listing 2).
  auto info = ProposalManager::GetInfo(&tx, pid);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, ProposalState::kAccepted);
  EXPECT_EQ(info->final_votes.size(), 2u);
  EXPECT_TRUE(info->final_votes.at(f.member_ids[0]));
}

TEST(Governance, ProposalRejectedByMajorityAgainst) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  json::Value proposal =
      f.MakeProposal("add_node_code", {{"code_id", json::Value("bad")}});
  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                           ToBytes("sr"));
  ASSERT_TRUE(submitted.ok());
  std::string pid = submitted->proposal_id;
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[1], pid, kVoteNo,
                                    ToBytes("b1")).ok());
  auto v2 = ProposalManager::Vote(&tx, f.member_ids[2], pid, kVoteNo,
                                  ToBytes("b2"));
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->state, ProposalState::kRejected);
  EXPECT_FALSE(tx.Handle(tables::kNodesCodeIds)->HasStr("bad"));
  // No further votes accepted.
  EXPECT_FALSE(ProposalManager::Vote(&tx, f.member_ids[0], pid, kVoteYes,
                                     ToBytes("late")).ok());
}

TEST(Governance, NonMemberRejected) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  json::Value proposal =
      f.MakeProposal("add_node_code", {{"code_id", json::Value("x")}});
  EXPECT_FALSE(
      ProposalManager::Submit(&tx, "stranger", proposal, ToBytes("sr")).ok());
}

TEST(Governance, ValidateRejectsMalformedProposal) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  // code_id must be a string per the default constitution's validate.
  json::Value proposal =
      f.MakeProposal("add_node_code", {{"code_id", json::Value(42)}});
  auto r = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                   ToBytes("sr"));
  EXPECT_FALSE(r.ok());
  // Unknown action fails at apply time.
  json::Value unknown = f.MakeProposal("frobnicate", {});
  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], unknown,
                                           ToBytes("sr2"));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[0],
                                    submitted->proposal_id, kVoteYes,
                                    ToBytes("b")).ok());
  auto v = ProposalManager::Vote(&tx, f.member_ids[1], submitted->proposal_id,
                                 kVoteYes, ToBytes("b2"));
  EXPECT_FALSE(v.ok());  // apply fails on unknown action
}

TEST(Governance, ConditionalBallotReadsState) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  // Ballot votes yes only if the code id is not yet present (checks KV).
  const char kConditional[] = R"(
    function vote(proposal, proposer_id) {
      let existing = kv_get('public:ccf.gov.nodes.code_ids',
                            proposal.actions[0].args.code_id);
      return existing == null;
    }
  )";
  json::Value proposal =
      f.MakeProposal("add_node_code", {{"code_id", json::Value("cond")}});
  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                           ToBytes("sr"));
  ASSERT_TRUE(submitted.ok());
  std::string pid = submitted->proposal_id;
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[0], pid, kConditional,
                                    ToBytes("b0")).ok());
  auto v = ProposalManager::Vote(&tx, f.member_ids[1], pid, kConditional,
                                 ToBytes("b1"));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(v->state, ProposalState::kAccepted);
}

TEST(Governance, WithdrawProposal) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  json::Value proposal =
      f.MakeProposal("add_node_code", {{"code_id", json::Value("w")}});
  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                           ToBytes("sr"));
  ASSERT_TRUE(submitted.ok());
  // Only the proposer may withdraw.
  EXPECT_FALSE(ProposalManager::Withdraw(&tx, f.member_ids[1],
                                         submitted->proposal_id).ok());
  EXPECT_TRUE(ProposalManager::Withdraw(&tx, f.member_ids[0],
                                        submitted->proposal_id).ok());
  auto info = ProposalManager::GetInfo(&tx, submitted->proposal_id);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->state, ProposalState::kDropped);
}

TEST(Governance, TransitionServiceToOpen) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  json::Value proposal = f.MakeProposal("transition_service_to_open", {});
  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                           ToBytes("sr"));
  ASSERT_TRUE(submitted.ok());
  std::string pid = submitted->proposal_id;
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[0], pid, kVoteYes,
                                    ToBytes("b0")).ok());
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[1], pid, kVoteYes,
                                    ToBytes("b1")).ok());
  auto record = ReadRecord(tx.Handle(tables::kServiceInfo),
                           tables::kCurrentKey);
  ASSERT_TRUE(record.ok());
  auto info = ServiceInfo::FromJson(*record);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->status, ServiceStatus::kOpen);
}

TEST(Governance, SetConstitutionChangesRules) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  // New constitution: any single vote accepts ("dictatorship of whoever
  // votes first") — demonstrates programmability (paper §5.1).
  const char kLooseConstitution[] = R"(
    function resolve(proposal, proposer_id, votes) {
      for (let m of votes) { if (votes[m]) { return 'Accepted'; } }
      return 'Open';
    }
    function apply(proposal, proposal_id) {
      for (let action of proposal.actions) {
        if (action.name == 'add_node_code') {
          kv_put('public:ccf.gov.nodes.code_ids', action.args.code_id,
                 'AllowedToJoin');
        }
      }
      return true;
    }
  )";
  json::Value proposal = f.MakeProposal(
      "set_constitution", {{"constitution", json::Value(kLooseConstitution)}});
  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                           ToBytes("sr"));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[0],
                                    submitted->proposal_id, kVoteYes,
                                    ToBytes("b0")).ok());
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[1],
                                    submitted->proposal_id, kVoteYes,
                                    ToBytes("b1")).ok());

  // Under the new constitution one vote suffices.
  json::Value p2 =
      f.MakeProposal("add_node_code", {{"code_id", json::Value("quick")}});
  auto s2 = ProposalManager::Submit(&tx, f.member_ids[2], p2, ToBytes("sr2"));
  ASSERT_TRUE(s2.ok());
  auto v = ProposalManager::Vote(&tx, f.member_ids[2], s2->proposal_id,
                                 kVoteYes, ToBytes("b"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->state, ProposalState::kAccepted);
  EXPECT_TRUE(tx.Handle(tables::kNodesCodeIds)->HasStr("quick"));
}

TEST(Governance, HistoryRecordsSignedRequests) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  json::Value proposal =
      f.MakeProposal("add_node_code", {{"code_id", json::Value("h")}});
  ASSERT_TRUE(ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                      ToBytes("the-signed-request")).ok());
  size_t entries = tx.Handle(tables::kGovHistory)->Size();
  EXPECT_EQ(entries, 1u);
}

// ----------------------------------------------------- Recovery shares

TEST(Shares, ReissueAndRecover) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  kv::LedgerSecret secret = kv::LedgerSecret::Generate(&f.drbg);
  ASSERT_TRUE(ShareManager::ReissueShares(&tx, secret, &f.drbg).ok());
  // Threshold defaults to majority of 3 = 2.
  EXPECT_EQ(ShareManager::RecoveryThreshold(&tx), 2);

  // Each member decrypts their own share.
  std::map<std::string, Bytes> submitted;
  for (int i = 0; i < 2; ++i) {
    auto share = ShareManager::ExtractMemberShare(&tx, f.member_ids[i],
                                                  f.member_keys[i]);
    ASSERT_TRUE(share.ok()) << share.status().ToString();
    submitted[f.member_ids[i]] = *share;
  }
  auto recovered = ShareManager::RecoverLedgerSecret(&tx, submitted);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->key, secret.key);
}

TEST(Shares, InsufficientSharesFail) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  kv::LedgerSecret secret = kv::LedgerSecret::Generate(&f.drbg);
  ASSERT_TRUE(ShareManager::ReissueShares(&tx, secret, &f.drbg).ok());
  std::map<std::string, Bytes> submitted;
  auto share = ShareManager::ExtractMemberShare(&tx, f.member_ids[0],
                                                f.member_keys[0]);
  ASSERT_TRUE(share.ok());
  submitted[f.member_ids[0]] = *share;
  EXPECT_FALSE(ShareManager::RecoverLedgerSecret(&tx, submitted).ok());
}

TEST(Shares, WrongMemberCannotDecryptShare) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  kv::LedgerSecret secret = kv::LedgerSecret::Generate(&f.drbg);
  ASSERT_TRUE(ShareManager::ReissueShares(&tx, secret, &f.drbg).ok());
  // member1's key cannot open member0's share.
  EXPECT_FALSE(ShareManager::ExtractMemberShare(&tx, f.member_ids[0],
                                                f.member_keys[1]).ok());
}

TEST(Shares, CorruptedSharesDetected) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  kv::LedgerSecret secret = kv::LedgerSecret::Generate(&f.drbg);
  ASSERT_TRUE(ShareManager::ReissueShares(&tx, secret, &f.drbg).ok());
  std::map<std::string, Bytes> submitted;
  for (int i = 0; i < 2; ++i) {
    auto share = ShareManager::ExtractMemberShare(&tx, f.member_ids[i],
                                                  f.member_keys[i]);
    ASSERT_TRUE(share.ok());
    submitted[f.member_ids[i]] = *share;
  }
  // Corrupt one share: GCM unwrap must fail (no silent wrong secret).
  submitted[f.member_ids[0]][3] ^= 1;
  EXPECT_FALSE(ShareManager::RecoverLedgerSecret(&tx, submitted).ok());
}

TEST(Shares, ThresholdChangeViaGovernance) {
  GovFixture f;
  kv::Tx tx = f.store.BeginTx();
  json::Value proposal = f.MakeProposal(
      "set_recovery_threshold", {{"threshold", json::Value(3)}});
  auto submitted = ProposalManager::Submit(&tx, f.member_ids[0], proposal,
                                           ToBytes("sr"));
  ASSERT_TRUE(submitted.ok());
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[0],
                                    submitted->proposal_id, kVoteYes,
                                    ToBytes("b0")).ok());
  ASSERT_TRUE(ProposalManager::Vote(&tx, f.member_ids[1],
                                    submitted->proposal_id, kVoteYes,
                                    ToBytes("b1")).ok());
  EXPECT_EQ(ShareManager::RecoveryThreshold(&tx), 3);

  // Reissue with the new threshold: now 2 shares are not enough.
  kv::LedgerSecret secret = kv::LedgerSecret::Generate(&f.drbg);
  ASSERT_TRUE(ShareManager::ReissueShares(&tx, secret, &f.drbg).ok());
  std::map<std::string, Bytes> submitted_shares;
  for (int i = 0; i < 2; ++i) {
    auto share = ShareManager::ExtractMemberShare(&tx, f.member_ids[i],
                                                  f.member_keys[i]);
    ASSERT_TRUE(share.ok());
    submitted_shares[f.member_ids[i]] = *share;
  }
  EXPECT_FALSE(ShareManager::RecoverLedgerSecret(&tx, submitted_shares).ok());
  auto share2 = ShareManager::ExtractMemberShare(&tx, f.member_ids[2],
                                                 f.member_keys[2]);
  ASSERT_TRUE(share2.ok());
  submitted_shares[f.member_ids[2]] = *share2;
  auto recovered = ShareManager::RecoverLedgerSecret(&tx, submitted_shares);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->key, secret.key);
}

// ---------------------------------------------------------- Records

TEST(Records, NodeInfoRoundTrip) {
  crypto::KeyPair k = crypto::KeyPair::FromSeed(ToBytes("n"));
  NodeInfo info;
  info.node_id = "n3";
  info.status = NodeStatus::kRetiring;
  info.cert = crypto::IssueCertificate("n3", "node", k.public_key(), k, "");
  info.code_id = "code-1";
  info.host = "10.0.0.3";
  auto back = NodeInfo::FromJson(info.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->node_id, "n3");
  EXPECT_EQ(back->status, NodeStatus::kRetiring);
  EXPECT_EQ(back->cert.Fingerprint(), info.cert.Fingerprint());
  EXPECT_EQ(back->code_id, "code-1");
}

TEST(Records, StatusNamesMatchPaper) {
  // Figure 6 state names.
  EXPECT_STREQ(NodeStatusName(NodeStatus::kPending), "Pending");
  EXPECT_STREQ(NodeStatusName(NodeStatus::kTrusted), "Trusted");
  EXPECT_STREQ(NodeStatusName(NodeStatus::kRetiring), "Retiring");
  EXPECT_STREQ(NodeStatusName(NodeStatus::kRetired), "Retired");
  EXPECT_FALSE(NodeStatusFromName("Bogus").ok());
}

TEST(Records, ProposalInfoRoundTrip) {
  ProposalInfo info;
  info.proposer_id = "m0";
  info.state = ProposalState::kAccepted;
  info.ballots["m0"] = kVoteYes;
  info.ballots["m1"] = kVoteYes;
  info.final_votes["m0"] = true;
  info.final_votes["m1"] = true;
  auto back = ProposalInfo::FromJson(info.ToJson());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->state, ProposalState::kAccepted);
  EXPECT_EQ(back->ballots.size(), 2u);
  EXPECT_EQ(back->final_votes.size(), 2u);
}

}  // namespace
}  // namespace ccf::gov
