// Node-to-node channel key lifecycle: AES-GCM nonces are (epoch, counter,
// direction) and the 2^64 counter space must never wrap within an epoch.
// When a channel's send counter reaches kChannelRekeyAt the node fails
// closed: it bumps the channel epoch (a fresh HKDF derivation over the
// shared ECDH secret) and resets the counter, and receivers keep a small
// cache of recent epoch keys so in-flight messages from the previous
// epoch still decrypt. These tests force a near-wrap counter and assert
// the rekey happens, is counted, and never interrupts consensus.

#include <gtest/gtest.h>

#include <string>

#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

bool Committed(ServiceHarness* h, uint64_t seqno) {
  for (const std::string& id : {"n0", "n1", "n2"}) {
    node::Node* n = h->node(id);
    if (n == nullptr || n->commit_seqno() < seqno) return false;
  }
  return true;
}

TEST(NodeChannel, NearWrapCounterTriggersEpochRekey) {
  ServiceHarness h;
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);

  // Channels started at epoch 0 with small counters.
  ASSERT_EQ(n0->channel_send_epoch("n1"), 0u);
  uint64_t sent_so_far = n0->channel_send_counter("n1");
  ASSERT_GT(sent_so_far, 0u);  // join/consensus traffic flowed
  ASSERT_LT(sent_so_far, node::Node::kChannelRekeyAt);

  // Jump n0's counter for the n0->n1 channel to just below the limit;
  // the next couple of heartbeats push it over.
  n0->TestForceChannelCounter("n1", node::Node::kChannelRekeyAt - 2);
  h.env().Step(100);

  EXPECT_EQ(n0->channel_send_epoch("n1"), 1u);
  // Fresh epoch, fresh counter: far away from the threshold again.
  EXPECT_LT(n0->channel_send_counter("n1"), 1000u);
  EXPECT_GE(n0->metrics().ScalarValue("channel.rekeys"), 1u);
  // The unrelated channel kept its epoch.
  EXPECT_EQ(n0->channel_send_epoch("n2"), 0u);

  // Consensus across the rekeyed channel still works: a write commits on
  // every node, meaning n1 decrypted epoch-1 traffic from n0.
  node::Client* c = h.UserClient("alice");
  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "post-rekey";
  auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 3000);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->status, 200);
  uint64_t target = n0->last_seqno();
  EXPECT_TRUE(h.env().RunUntil([&] { return Committed(&h, target); }, 5000));
  EXPECT_EQ(n0->channel_send_epoch("n1"), 1u);
}

TEST(NodeChannel, RepeatedRekeysSurviveContinuousLoad) {
  ServiceHarness h;
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);

  node::Client* c = h.UserClient("alice");
  for (int round = 0; round < 3; ++round) {
    // Near-wrap both of the primary's channels mid-load.
    n0->TestForceChannelCounter("n1", node::Node::kChannelRekeyAt - 1);
    n0->TestForceChannelCounter("n2", node::Node::kChannelRekeyAt - 1);
    json::Object msg;
    msg["id"] = round;
    msg["msg"] = "load-" + std::to_string(round);
    auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 3000);
    ASSERT_TRUE(w.ok());
    ASSERT_EQ(w->status, 200);
    h.env().Step(50);
    EXPECT_EQ(n0->channel_send_epoch("n1"),
              static_cast<uint32_t>(round + 1));
    EXPECT_EQ(n0->channel_send_epoch("n2"),
              static_cast<uint32_t>(round + 1));
  }
  EXPECT_GE(n0->metrics().ScalarValue("channel.rekeys"), 6u);

  uint64_t target = n0->last_seqno();
  EXPECT_TRUE(h.env().RunUntil([&] { return Committed(&h, target); }, 5000));
}

}  // namespace
}  // namespace ccf::testing
