// Live-mode service harness: builds real multi-node CCF services over
// loopback TCP (LiveNodeHost + LiveClient), mirroring the simulator's
// ServiceHarness API where it makes sense. Reuses the deterministic
// consortium/user identities so governance flows are identical under both
// drivers.
//
// Everything here runs on wall-clock time: waits are real sleeps with
// deadlines, sized for the FastNodeConfig timeouts (elections 50-100ms).

#ifndef CCF_TESTS_LIVE_HARNESS_H_
#define CCF_TESTS_LIVE_HARNESS_H_

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "host/live_client.h"
#include "host/live_node.h"
#include "apps/logging.h"
#include "tests/service_harness.h"

namespace ccf::testing {

inline bool LiveWaitFor(const std::function<bool()>& pred,
                        uint64_t timeout_ms = 5000) {
  uint64_t deadline = host::SteadyNowMs() + timeout_ms;
  while (host::SteadyNowMs() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

class LiveServiceHarness {
 public:
  explicit LiveServiceHarness(int num_members = 3)
      : consortium_(num_members) {}
  ~LiveServiceHarness() {
    clients_.clear();  // close client sockets before the nodes go away
    hosts_.clear();
  }

  Consortium& consortium() { return consortium_; }

  void SetConfigTweak(std::function<void(node::NodeConfig*)> tweak) {
    config_tweak_ = std::move(tweak);
  }

  // Adds a user before genesis.
  TestUser* AddUser(const std::string& id) {
    users_[id] = std::make_unique<TestUser>(id);
    return users_[id].get();
  }

  // Starts n0 with the logging app and waits for it to become primary.
  host::LiveNodeHost* StartGenesis(bool open_immediately = true) {
    node::ServiceInit init;
    init.members = consortium_.Identities();
    init.open_immediately = open_immediately;
    for (auto& [id, user] : users_) {
      init.initial_users.emplace_back(id, user->cert.Serialize());
    }
    host::LiveNodeConfig cfg;
    cfg.node = FastNodeConfig("n0");
    if (config_tweak_) config_tweak_(&cfg.node);
    auto started =
        host::LiveNodeHost::StartGenesis(std::move(cfg), init, &logging_app_);
    if (!started.ok()) return nullptr;
    host::LiveNodeHost* ptr = started->get();
    hosts_["n0"] = std::move(*started);
    service_identity_ = ptr->WithNode(
        [](node::Node* n) { return n->service_identity(); });
    if (!LiveWaitFor([ptr] {
          return ptr->WithNode([](node::Node* n) { return n->IsPrimary(); });
        })) {
      return nullptr;
    }
    return ptr;
  }

  // Governance requests are submitted through member clients connected to
  // this node (writes forward to the primary). Point it at a live node
  // after killing n0.
  void SetGovNode(const std::string& id) { gov_node_ = id; }

  // Starts `id` as a joiner peered with every running node, waits for the
  // join handshake, then drives governance to trust it.
  host::LiveNodeHost* JoinAndTrust(const std::string& id,
                                   uint64_t timeout_ms = 10000,
                                   const std::string& target = "n0") {
    host::LiveNodeHost* joiner = Join(id, target);
    if (joiner == nullptr) return nullptr;
    if (!LiveWaitFor(
            [joiner] {
              return joiner->WithNode(
                  [](node::Node* n) { return n->has_joined(); });
            },
            timeout_ms)) {
      return nullptr;
    }
    if (!TrustNode(id, timeout_ms)) return nullptr;
    return joiner;
  }

  host::LiveNodeHost* Join(const std::string& id,
                           const std::string& target = "n0") {
    host::LiveNodeConfig cfg;
    cfg.node = FastNodeConfig(id, std::hash<std::string>{}(id) % 1000);
    if (config_tweak_) config_tweak_(&cfg.node);
    for (auto& [nid, h] : hosts_) {
      cfg.transport.peers[nid] =
          "127.0.0.1:" + std::to_string(h->node_port());
    }
    auto started = host::LiveNodeHost::StartJoiner(
        std::move(cfg), service_identity_, target, &logging_app_);
    if (!started.ok()) return nullptr;
    host::LiveNodeHost* ptr = started->get();
    // Symmetric addressing: existing nodes learn where the joiner listens
    // so they can redial it after a link loss, not just answer its dials.
    for (auto& [nid, h] : hosts_) {
      h->AddPeer(id, "127.0.0.1:" + std::to_string(ptr->node_port()));
    }
    hosts_[id] = std::move(*started);
    return ptr;
  }

  bool TrustNode(const std::string& id, uint64_t timeout_ms = 10000) {
    json::Object args;
    args["node_id"] = id;
    if (!RunProposal("transition_node_to_trusted",
                     json::Value(std::move(args)), timeout_ms)) {
      return false;
    }
    // Same convergence condition as the simulator harness: every live node
    // has pruned to a single active configuration containing the joiner.
    return LiveWaitFor(
        [&] {
          host::LiveNodeHost* j = host(id);
          if (j == nullptr) return false;
          if (!j->WithNode([](node::Node* n) { return n->has_joined(); })) {
            return false;
          }
          for (auto& [nid, h] : hosts_) {
            bool ok = h->WithNode([&](node::Node* n) {
              if (n->retired()) return true;
              const auto& configs = n->raft().active_configs();
              return configs.size() == 1 &&
                     configs.front().nodes.count(id) != 0;
            });
            if (!ok) return false;
          }
          return true;
        },
        timeout_ms);
  }

  // Submits {actions: [{name, args}]} via a live member client and votes
  // yes with a majority.
  bool RunProposal(const std::string& action, json::Value args,
                   uint64_t timeout_ms = 10000) {
    json::Object act;
    act["name"] = action;
    act["args"] = std::move(args);
    json::Object proposal;
    proposal["actions"] = json::Array{json::Value(std::move(act))};
    json::Object body;
    body["proposal"] = std::move(proposal);

    host::LiveClient* m0 = MemberClient(0, gov_node_);
    if (m0 == nullptr) return false;
    auto resp =
        m0->PostJsonSigned("/gov/propose", json::Value(body), timeout_ms);
    if (!resp.ok() || resp->status != 200) return false;
    auto parsed = json::Parse(ToString(resp->body));
    if (!parsed.ok()) return false;
    std::string pid = parsed->GetString("proposal_id");
    std::string state = parsed->GetString("state");

    for (size_t i = 0; i < consortium_.members.size() && state == "Open";
         ++i) {
      json::Object ballot;
      ballot["proposal_id"] = pid;
      ballot["ballot"] =
          "function vote(proposal, proposer_id) { return true; }";
      host::LiveClient* m = MemberClient(i, gov_node_);
      if (m == nullptr) return false;
      auto vresp = m->PostJsonSigned("/gov/vote",
                                     json::Value(std::move(ballot)),
                                     timeout_ms);
      if (!vresp.ok() || vresp->status != 200) return false;
      auto vparsed = json::Parse(ToString(vresp->body));
      if (!vparsed.ok()) return false;
      state = vparsed->GetString("state");
    }
    return state == "Accepted";
  }

  host::LiveNodeHost* host(const std::string& id) {
    auto it = hosts_.find(id);
    return it != hosts_.end() ? it->second.get() : nullptr;
  }
  std::map<std::string, std::unique_ptr<host::LiveNodeHost>>& hosts() {
    return hosts_;
  }

  // Hard-stops a node (host threads + enclave). Clients connected to it
  // see their connections die; peers redial until it returns.
  void Kill(const std::string& id) {
    DropClients();  // some may point at the dead node; cheap to rebuild
    hosts_.erase(id);
  }

  // Polls for a node that believes it is primary (highest view wins).
  std::string PrimaryId(uint64_t timeout_ms = 5000) {
    std::string primary;
    LiveWaitFor(
        [&] {
          uint64_t best_view = 0;
          primary.clear();
          for (auto& [nid, h] : hosts_) {
            auto [is_primary, view] = h->WithNode([](node::Node* n) {
              return std::make_pair(n->IsPrimary(), n->view());
            });
            if (is_primary && (primary.empty() || view > best_view)) {
              primary = nid;
              best_view = view;
            }
          }
          return !primary.empty();
        },
        timeout_ms);
    return primary;
  }

  host::LiveClient* UserClient(const std::string& user_id,
                               const std::string& node_id = "n0") {
    std::string key = "client-" + user_id + "@" + node_id;
    auto it = clients_.find(key);
    if (it == clients_.end()) {
      TestUser* user = users_.at(user_id).get();
      auto client = std::make_unique<host::LiveClient>(
          key, service_identity_, &user->key, user->cert);
      if (!ConnectClient(client.get(), node_id)) return nullptr;
      it = clients_.emplace(key, std::move(client)).first;
    }
    return it->second.get();
  }

  host::LiveClient* MemberClient(size_t idx,
                                 const std::string& node_id = "n0") {
    auto& m = consortium_.members.at(idx);
    std::string key = "client-" + m.id + "@" + node_id;
    auto it = clients_.find(key);
    if (it == clients_.end()) {
      auto client = std::make_unique<host::LiveClient>(
          key, service_identity_, &m.key, m.cert);
      if (!ConnectClient(client.get(), node_id)) return nullptr;
      it = clients_.emplace(key, std::move(client)).first;
    }
    return it->second.get();
  }

  void DropClients() { clients_.clear(); }

  // Waits until `seqno` is committed on all live nodes.
  bool WaitForCommitEverywhere(uint64_t seqno, uint64_t timeout_ms = 8000) {
    return LiveWaitFor(
        [&] {
          for (auto& [nid, h] : hosts_) {
            bool ok = h->WithNode([&](node::Node* n) {
              if (!n->has_joined() || !n->raft().InActiveConfig()) {
                return true;
              }
              return n->commit_seqno() >= seqno;
            });
            if (!ok) return false;
          }
          return true;
        },
        timeout_ms);
  }

 private:
  bool ConnectClient(host::LiveClient* client, const std::string& node_id) {
    host::LiveNodeHost* h = host(node_id);
    if (h == nullptr) return false;
    return client->Connect("127.0.0.1", h->rpc_port()).ok();
  }

  Consortium consortium_;
  std::string gov_node_ = "n0";
  std::function<void(node::NodeConfig*)> config_tweak_;
  apps::LoggingApp logging_app_;
  crypto::PublicKeyBytes service_identity_{};
  std::map<std::string, std::unique_ptr<host::LiveNodeHost>> hosts_;
  std::map<std::string, std::unique_ptr<TestUser>> users_;
  std::map<std::string, std::unique_ptr<host::LiveClient>> clients_;
};

}  // namespace ccf::testing

#endif  // CCF_TESTS_LIVE_HARNESS_H_
