// Exec-batch flush policy (ISSUE satellite): with exec_batch_max /
// exec_batch_deadline_ms set, batches persist across inbox drains until
// the size or deadline trigger fires, instead of flushing unconditionally
// at every drain. Defaults (0/0) keep the historical drain-flush — the
// chaos suites assert that path stays bit-identical.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/json.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

json::Value LogBody(uint64_t id, const std::string& msg) {
  json::Object body;
  body["id"] = id;
  body["msg"] = msg;
  return json::Value(std::move(body));
}

http::Request LogRequest(uint64_t id, const std::string& msg) {
  http::Request req;
  req.method = "POST";
  req.path = "/app/log";
  req.headers["content-type"] = "application/json";
  req.body = ToBytes(LogBody(id, msg).Dump());
  return req;
}

TEST(FlushPolicy, SizeTriggerFormsFixedBatches) {
  ServiceHarness h;
  h.AddUser("alice");
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->exec_batch_max = 4;
    cfg->exec_batch_deadline_ms = 10;
  });
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);

  node::Client* alice = h.UserClient("alice");
  constexpr int kRequests = 10;
  int responses = 0;
  for (int i = 0; i < kRequests; ++i) {
    alice->SendRequest(LogRequest(1, "m" + std::to_string(i)),
                       [&](Result<http::Response> resp) {
                         ASSERT_TRUE(resp.ok());
                         EXPECT_EQ(resp->status, 200);
                         ++responses;
                       });
  }
  ASSERT_TRUE(h.env().RunUntil([&] { return responses == kRequests; }, 5000));

  // 10 pipelined requests with max=4: at least two size-triggered flushes,
  // the tail (2 requests) goes out on the deadline, and the unconditional
  // drain flush never fires under a deferred policy.
  EXPECT_GE(n0->metrics().ScalarValue("exec.flush.size"), 2u);
  EXPECT_GE(n0->metrics().ScalarValue("exec.flush.deadline"), 1u);
  EXPECT_EQ(n0->metrics().ScalarValue("exec.flush.drain"), 0u);

  auto read = alice->Get("/app/log?id=1");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->status, 200);
  EXPECT_NE(ToString(read->body).find("m9"), std::string::npos);
}

TEST(FlushPolicy, DeadlineTriggerFlushesSmallBatches) {
  ServiceHarness h;
  h.AddUser("alice");
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->exec_batch_max = 100;  // never reached
    cfg->exec_batch_deadline_ms = 5;
  });
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);

  node::Client* alice = h.UserClient("alice");
  auto resp = alice->PostJson("/app/log", LogBody(2, "held"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_GE(n0->metrics().ScalarValue("exec.flush.deadline"), 1u);
  EXPECT_EQ(n0->metrics().ScalarValue("exec.flush.size"), 0u);
  EXPECT_EQ(n0->metrics().ScalarValue("exec.flush.drain"), 0u);
}

TEST(FlushPolicy, DefaultsKeepDrainFlush) {
  ServiceHarness h;
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  node::Client* alice = h.UserClient("alice");
  auto resp = alice->PostJson("/app/log", LogBody(3, "legacy"));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  EXPECT_GT(n0->metrics().ScalarValue("exec.flush.drain"), 0u);
  EXPECT_EQ(n0->metrics().ScalarValue("exec.flush.size"), 0u);
  EXPECT_EQ(n0->metrics().ScalarValue("exec.flush.deadline"), 0u);
}

// The same pipelined workload produces the same application state whether
// the deferred policy is on or off — batching changes latency envelopes,
// never results.
TEST(FlushPolicy, PolicyOnAndOffConverge) {
  auto run = [](bool deferred) {
    ServiceHarness h;
    h.AddUser("alice");
    if (deferred) {
      h.SetConfigTweak([](node::NodeConfig* cfg) {
        cfg->exec_batch_max = 3;
        cfg->exec_batch_deadline_ms = 7;
      });
    }
    node::Node* n0 = h.StartGenesis();
    EXPECT_NE(n0, nullptr);
    node::Client* alice = h.UserClient("alice");
    int responses = 0;
    for (int i = 0; i < 17; ++i) {
      alice->SendRequest(
          LogRequest(i % 3, "payload-" + std::to_string(i)),
          [&](Result<http::Response> resp) {
            EXPECT_TRUE(resp.ok() && resp->status == 200);
            ++responses;
          });
    }
    EXPECT_TRUE(h.env().RunUntil([&] { return responses == 17; }, 5000));
    std::vector<std::string> logs;
    for (uint64_t id = 0; id < 3; ++id) {
      auto read = alice->Get("/app/log?id=" + std::to_string(id));
      EXPECT_TRUE(read.ok() && read->status == 200);
      logs.push_back(read.ok() ? ToString(read->body) : "");
    }
    return logs;
  };
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace ccf::testing
