// End-to-end integration tests: full CCF services under simulation.

#include <gtest/gtest.h>

#include "common/hex.h"
#include "merkle/receipt.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

TEST(SingleNodeService, WriteAndReadViaClient) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  ASSERT_TRUE(n0->IsPrimary());

  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 42;
  msg["msg"] = "hello ledger";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok()) << write.status().ToString();
  EXPECT_EQ(write->status, 200);
  auto txid = node::Client::TxIdOf(*write);
  ASSERT_TRUE(txid.has_value());
  EXPECT_GT(txid->second, 0u);

  auto read = client->Get("/app/log?id=42");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->status, 200);
  auto body = json::Parse(ToString(read->body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->GetString("msg"), "hello ledger");
}

TEST(SingleNodeService, TxStatusReachesCommitted) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "status check";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  auto txid = node::Client::TxIdOf(*write);
  ASSERT_TRUE(txid.has_value());

  // Poll the built-in tx endpoint until Committed (paper §3.2).
  std::string status;
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        auto resp = client->Get("/node/tx?view=" +
                                std::to_string(txid->first) + "&seqno=" +
                                std::to_string(txid->second));
        if (!resp.ok()) return false;
        auto body = json::Parse(ToString(resp->body));
        if (!body.ok()) return false;
        status = body->GetString("status");
        return status == "Committed";
      },
      5000))
      << "last status: " << status;
}

TEST(SingleNodeService, ReceiptVerifiesOffline) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  json::Object msg;
  msg["id"] = 7;
  msg["msg"] = "receipt me";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  auto txid = node::Client::TxIdOf(*write);
  ASSERT_TRUE(txid.has_value());

  // Wait for commit + a covering signature, then fetch the receipt.
  Result<http::Response> receipt_resp = Status::Unavailable("none");
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        receipt_resp =
            client->Get("/node/receipt?seqno=" + std::to_string(txid->second));
        return receipt_resp.ok() && receipt_resp->status == 200;
      },
      5000));

  auto body = json::Parse(ToString(receipt_resp->body));
  ASSERT_TRUE(body.ok());
  auto receipt_bytes = HexDecode(body->GetString("receipt"));
  ASSERT_TRUE(receipt_bytes.ok());
  auto receipt = merkle::Receipt::Deserialize(*receipt_bytes);
  ASSERT_TRUE(receipt.ok());
  // Full offline verification against the service identity only.
  EXPECT_TRUE(receipt->Verify(n0->service_identity()).ok());
  // And not against a different service.
  crypto::KeyPair other = crypto::KeyPair::FromSeed(ToBytes("other"));
  EXPECT_FALSE(receipt->Verify(other.public_key()).ok());
}

TEST(SingleNodeService, UnregisteredUserRejected) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  node::Client* anon = h.AnonymousClient();
  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "sneaky";
  auto write = anon->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->status, 401);
}

TEST(SingleNodeService, ServiceNotOpenBlocksUsers) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis(/*open_immediately=*/false);
  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "early";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->status, 503);

  // Members open the service via governance (paper Table 4).
  ASSERT_TRUE(h.RunProposal("transition_service_to_open",
                            json::Value(json::Object{})));
  auto write2 = client->PostJson("/app/log", json::Value(json::Object{
                                                 {"id", json::Value(1)},
                                                 {"msg", json::Value("now")},
                                             }));
  ASSERT_TRUE(write2.ok());
  EXPECT_EQ(write2->status, 200);
}

TEST(Governance, AddUserViaProposal) {
  ServiceHarness h;
  h.StartGenesis();
  TestUser* new_user = h.AddUser("newbie");

  json::Object args;
  args["user_id"] = "newbie";
  args["cert"] = HexEncode(new_user->cert.Serialize());
  ASSERT_TRUE(h.RunProposal("set_user", json::Value(std::move(args))));

  node::Client* client = h.UserClient("newbie");
  json::Object msg;
  msg["id"] = 5;
  msg["msg"] = "i exist now";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->status, 200);
}

TEST(Governance, UnsignedGovernanceRequestRejected) {
  ServiceHarness h;
  h.StartGenesis();
  node::Client* m0 = h.MemberClient(0);
  json::Object body;
  body["proposal"] = json::Object{};
  // PostJson (unsigned) instead of PostJsonSigned.
  auto resp = m0->PostJson("/gov/propose", json::Value(std::move(body)));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 401);
}

TEST(Governance, NonMemberCannotPropose) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  node::Client* user = h.UserClient("user0");
  json::Object body;
  body["proposal"] = json::Object{};
  auto resp = user->PostJsonSigned("/gov/propose", json::Value(std::move(body)));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 401);
}

TEST(MultiNodeService, JoinAndTrustGrowsCluster) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Node* n1 = h.JoinAndTrust("n1");
  ASSERT_NE(n1, nullptr);
  node::Node* n2 = h.JoinAndTrust("n2");
  ASSERT_NE(n2, nullptr);

  // All three nodes are in the configuration and share the ledger.
  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 100;
  msg["msg"] = "replicated";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  ASSERT_EQ(write->status, 200);
  auto txid = node::Client::TxIdOf(*write);
  ASSERT_TRUE(txid.has_value());
  ASSERT_TRUE(h.WaitForCommitEverywhere(txid->second));
  EXPECT_EQ(n0->store().GetStr("private:app.messages", "100"), "replicated");
  EXPECT_EQ(n1->store().GetStr("private:app.messages", "100"), "replicated");
  EXPECT_EQ(n2->store().GetStr("private:app.messages", "100"), "replicated");
}

TEST(MultiNodeService, ReadsServedByBackupWritesForwarded) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);

  // Write via n0 (primary), read via n1 (backup, served locally).
  node::Client* writer = h.UserClient("user0", "n0");
  json::Object msg;
  msg["id"] = 9;
  msg["msg"] = "from backup";
  ASSERT_TRUE(writer->PostJson("/app/log", json::Value(std::move(msg))).ok());
  ASSERT_TRUE(h.WaitForCommitEverywhere(h.node("n0")->last_seqno()));

  node::Client* reader = h.UserClient("user0", "n1");
  auto read = reader->Get("/app/log?id=9");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->status, 200);

  // Write via the backup: forwarded to the primary (paper §4.3).
  json::Object msg2;
  msg2["id"] = 10;
  msg2["msg"] = "forwarded";
  auto write2 = reader->PostJson("/app/log", json::Value(std::move(msg2)));
  ASSERT_TRUE(write2.ok()) << write2.status().ToString();
  EXPECT_EQ(write2->status, 200);
  EXPECT_TRUE(node::Client::TxIdOf(*write2).has_value());
}

TEST(MultiNodeService, FailoverContinuesService) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);

  node::Node* primary = h.Primary();
  ASSERT_NE(primary, nullptr);
  std::string dead = primary->id();
  h.env().SetUp(dead, false);

  // A new primary emerges among the remaining nodes.
  node::Node* new_primary = nullptr;
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        new_primary = h.Primary();
        return new_primary != nullptr && new_primary->id() != dead;
      },
      10000));

  // The service keeps accepting writes through the new primary.
  node::Client* client = h.UserClient("user0", new_primary->id());
  json::Object msg;
  msg["id"] = 77;
  msg["msg"] = "after failover";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok()) << write.status().ToString();
  EXPECT_EQ(write->status, 200);
}

TEST(MultiNodeService, NodeRetirement) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);

  // Retire the backup n2 via governance (remove_node -> Retiring ->
  // Retired, paper §4.5 and Listing 2).
  json::Object args;
  args["node_id"] = "n2";
  ASSERT_TRUE(h.RunProposal("remove_node", json::Value(std::move(args))));
  ASSERT_TRUE(h.env().RunUntil([&] { return h.node("n2")->retired(); },
                               10000));
  // Its final recorded status is Retired.
  auto raw = h.node("n0")->store().GetStr("public:ccf.gov.nodes.info", "n2");
  ASSERT_TRUE(raw.has_value());
  auto j = json::Parse(*raw);
  ASSERT_TRUE(j.ok());
  EXPECT_EQ(j->GetString("status"), "Retired");
  // Remaining two nodes still serve writes.
  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "post-retirement";
  auto write = client->PostJson("/app/log", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(write->status, 200);
}

TEST(MultiNodeService, JoinerStartsFromSnapshot) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");
  // Enough transactions to pass the snapshot interval (50).
  for (int i = 0; i < 60; ++i) {
    json::Object msg;
    msg["id"] = i;
    msg["msg"] = "bulk";
    ASSERT_TRUE(client->PostJson("/app/log", json::Value(std::move(msg))).ok());
  }
  ASSERT_TRUE(h.WaitForCommitEverywhere(n0->last_seqno()));

  node::Node* n1 = h.JoinAndTrust("n1");
  ASSERT_NE(n1, nullptr);
  // The joiner never held the early entries: its consensus log starts at
  // the snapshot (paper §4.4).
  EXPECT_EQ(n1->raft().GetLogEntry(1), nullptr);
  // But its application state is complete.
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n1->commit_seqno() >= n0->commit_seqno(); }, 8000));
  EXPECT_EQ(n1->store().GetStr("private:app.messages", "42"), "bulk");
}

TEST(ScriptedApp, InstallAndInvokeViaGovernance) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();

  json::Object args;
  args["module"] = apps::LoggingAppModule();
  auto endpoints = json::Parse(apps::LoggingAppEndpointsJson());
  ASSERT_TRUE(endpoints.ok());
  args["endpoints"] = *endpoints;
  ASSERT_TRUE(h.RunProposal("set_js_app", json::Value(std::move(args))));

  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 3;
  msg["msg"] = "scripted hello";
  auto write = client->PostJson("/app/jslog", json::Value(std::move(msg)));
  ASSERT_TRUE(write.ok());
  ASSERT_EQ(write->status, 200) << ToString(write->body);
  EXPECT_TRUE(node::Client::TxIdOf(*write).has_value());

  json::Object read_body;
  read_body["id"] = 3;
  auto read = client->PostJson("/app/jslog_read",
                               json::Value(std::move(read_body)));
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->status, 200) << ToString(read->body);
  auto body = json::Parse(ToString(read->body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->GetString("msg"), "scripted hello");

  // Anonymous callers are still rejected by the scripted auth policy.
  auto anon = h.AnonymousClient()->PostJson(
      "/app/jslog", json::Value(json::Object{{"id", json::Value(1)},
                                             {"msg", json::Value("x")}}));
  ASSERT_TRUE(anon.ok());
  EXPECT_EQ(anon->status, 401);
}

TEST(Confidentiality, PrivateWritesAreEncryptedOnLedger) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "TOPSECRET-PAYLOAD";
  ASSERT_TRUE(client->PostJson("/app/log", json::Value(std::move(msg))).ok());

  // Scan raw ledger bytes: the secret must not appear anywhere.
  std::string needle = "TOPSECRET-PAYLOAD";
  bool found = false;
  for (const ledger::Entry& e : n0->host_ledger().entries()) {
    std::string all = ToString(e.public_ws) + ToString(e.private_sealed);
    if (all.find(needle) != std::string::npos) found = true;
  }
  EXPECT_FALSE(found);

  // Whereas a public-map write is visible (audit without decryption).
  json::Object pub;
  pub["id"] = 2;
  pub["msg"] = "PUBLIC-PAYLOAD";
  ASSERT_TRUE(
      client->PostJson("/app/log_public", json::Value(std::move(pub))).ok());
  bool found_public = false;
  for (const ledger::Entry& e : n0->host_ledger().entries()) {
    if (ToString(e.public_ws).find("PUBLIC-PAYLOAD") != std::string::npos) {
      found_public = true;
    }
  }
  EXPECT_TRUE(found_public);
}

TEST(Observability, NetworkEndpointReportsTopology) {
  ServiceHarness h;
  h.AddUser("user0");
  h.StartGenesis();
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  auto resp = h.AnonymousClient()->Get("/node/network");
  ASSERT_TRUE(resp.ok());
  auto body = json::Parse(ToString(resp->body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->GetString("service_status"), "Open");
  const json::Value* nodes = body->Get("nodes");
  ASSERT_NE(nodes, nullptr);
  EXPECT_EQ(nodes->GetString("n0"), "Trusted");
  EXPECT_EQ(nodes->GetString("n1"), "Trusted");
}

}  // namespace
}  // namespace ccf::testing
