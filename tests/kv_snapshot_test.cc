// KV snapshot serialization (paper §4.4): the serialized state is
// deterministic, so every node snapshotting the same committed state
// produces identical bytes and the content digest committed as snapshot
// evidence is well-defined. FilterState/MergeStates split a state into
// its public (plaintext) and private (sealed) halves for the bundle.

#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.h"
#include "kv/snapshot.h"
#include "kv/store.h"

namespace ccf::kv {
namespace {

void Commit(Store* store, const std::string& map, const std::string& key,
            const std::string& value) {
  Tx tx = store->BeginTx();
  tx.Handle(map)->PutStr(key, value);
  ASSERT_TRUE(store->CommitTx(&tx).ok());
}

// The property the snapshot evidence digest relies on: a primary
// committing transactions and a replica replaying the resulting write
// sets serialize to identical bytes, whatever the in-memory construction
// order (maps and keys are emitted sorted, versions included).
TEST(KvSnapshot, SerializeDeterministicAcrossReplicationPaths) {
  Store primary;
  std::vector<std::pair<WriteSet, uint64_t>> history;
  auto record = [&](const std::string& map, const std::string& key,
                    const std::string& value) {
    Tx tx = primary.BeginTx();
    tx.Handle(map)->PutStr(key, value);
    auto result = primary.CommitTx(&tx);
    ASSERT_TRUE(result.ok());
    history.emplace_back(result->write_set, result->seqno);
  };
  record("public:alpha", "k1", "v1");
  record("private:beta", "k2", "v2");
  record("public:alpha", "k0", "v0");

  Store replica;  // applies the replicated write sets, like a backup
  for (const auto& [ws, seqno] : history) {
    ASSERT_TRUE(replica.ApplyWriteSet(ws, seqno).ok());
  }

  EXPECT_EQ(SerializeState(primary.current_state()),
            SerializeState(replica.current_state()));
  EXPECT_EQ(crypto::Sha256::Hash(SerializeState(primary.current_state())),
            crypto::Sha256::Hash(SerializeState(replica.current_state())));
}

TEST(KvSnapshot, SerializeRoundTrip) {
  Store store;
  Commit(&store, "public:alpha", "k", "v");
  Commit(&store, "private:beta", "x", std::string(300, 'y'));

  Bytes ser = SerializeState(store.current_state());
  auto back = DeserializeState(ser);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(SerializeState(*back), ser);

  Store restored;
  restored.InstallState(*back, 2);
  EXPECT_EQ(restored.GetStr("public:alpha", "k"), "v");
  EXPECT_EQ(restored.GetStr("private:beta", "x"), std::string(300, 'y'));
}

TEST(KvSnapshot, DeserializeRejectsCorruption) {
  Store store;
  Commit(&store, "public:alpha", "k", "v");
  Bytes ser = SerializeState(store.current_state());
  Bytes truncated(ser.begin(), ser.end() - 1);
  EXPECT_FALSE(DeserializeState(truncated).ok());
}

TEST(KvSnapshot, FilterSplitsByVisibilityAndMergeRejoins) {
  Store store;
  Commit(&store, "public:alpha", "pk", "pv");
  Commit(&store, "public:ccf.internal.nodes", "n0", "info");
  Commit(&store, "private:beta", "sk", "sv");

  State pub = FilterState(store.current_state(), /*public_only=*/true);
  State priv = FilterState(store.current_state(), /*public_only=*/false);

  Store pub_store;
  pub_store.InstallState(pub, 1);
  EXPECT_EQ(pub_store.GetStr("public:alpha", "pk"), "pv");
  EXPECT_FALSE(pub_store.GetStr("private:beta", "sk").has_value());

  Store priv_store;
  priv_store.InstallState(priv, 1);
  EXPECT_EQ(priv_store.GetStr("private:beta", "sk"), "sv");
  EXPECT_FALSE(priv_store.GetStr("public:alpha", "pk").has_value());

  auto merged = MergeStates(pub, priv);
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  EXPECT_EQ(SerializeState(*merged), SerializeState(store.current_state()));
}

TEST(KvSnapshot, MergeRejectsOverlappingMaps) {
  Store store;
  Commit(&store, "public:alpha", "k", "v");
  State pub = FilterState(store.current_state(), /*public_only=*/true);
  auto merged = MergeStates(pub, pub);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), Status::Code::kFailedPrecondition);
}

TEST(KvSnapshot, TakeAndInstallSnapshot) {
  Store store;
  Commit(&store, "public:alpha", "k", "v");
  Commit(&store, "private:beta", "x", "y");
  store.Compact(store.current_seqno());

  Snapshot snap = TakeSnapshot(store, /*view=*/3);
  EXPECT_EQ(snap.seqno, store.committed_seqno());
  EXPECT_EQ(snap.view, 3u);

  Store restored;
  ASSERT_TRUE(InstallSnapshot(snap, &restored).ok());
  EXPECT_EQ(restored.current_seqno(), snap.seqno);
  EXPECT_EQ(restored.GetStr("public:alpha", "k"), "v");
  EXPECT_EQ(restored.GetStr("private:beta", "x"), "y");

  // The digest is a pure function of the captured state: re-taking the
  // snapshot from the restored store yields the same digest.
  Snapshot again = TakeSnapshot(restored, /*view=*/3);
  EXPECT_EQ(again.Digest(), snap.Digest());
}

}  // namespace
}  // namespace ccf::kv
