// End-to-end test harness: builds full CCF services (genesis + joiners +
// consortium + users) in the deterministic simulation.

#ifndef CCF_TESTS_SERVICE_HARNESS_H_
#define CCF_TESTS_SERVICE_HARNESS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gov/records.h"
#include "kv/snapshot.h"
#include "node/client.h"
#include "apps/logging.h"
#include "node/node.h"
#include "sim/invariants.h"

namespace ccf::testing {

inline node::NodeConfig FastNodeConfig(const std::string& id,
                                       uint64_t seed = 0) {
  node::NodeConfig cfg;
  cfg.node_id = id;
  cfg.seed = seed;
  cfg.raft.election_timeout_min_ms = 50;
  cfg.raft.election_timeout_max_ms = 100;
  cfg.raft.heartbeat_interval_ms = 10;
  cfg.raft.primary_quiesce_timeout_ms = 300;
  cfg.raft.seed = seed;
  cfg.signature_interval_txs = 5;
  cfg.signature_interval_ms = 30;
  cfg.snapshot_interval_txs = 50;
  return cfg;
}

struct Consortium {
  struct Member {
    std::string id;
    crypto::KeyPair key;
    crypto::Certificate cert;
  };
  std::vector<Member> members;

  explicit Consortium(int n) {
    for (int i = 0; i < n; ++i) {
      std::string id = "member" + std::to_string(i);
      crypto::KeyPair key =
          crypto::KeyPair::FromSeed(ToBytes("member-key-" + std::to_string(i)));
      crypto::Certificate cert =
          crypto::IssueCertificate(id, "member", key.public_key(), key, "");
      members.push_back({id, std::move(key), std::move(cert)});
    }
  }

  std::vector<node::MemberIdentity> Identities() const {
    std::vector<node::MemberIdentity> out;
    for (const Member& m : members) {
      out.push_back({m.id, m.cert.Serialize(), m.key.public_key()});
    }
    return out;
  }
};

struct TestUser {
  std::string id;
  crypto::KeyPair key;
  crypto::Certificate cert;

  explicit TestUser(const std::string& id)
      : id(id),
        key(crypto::KeyPair::FromSeed(ToBytes("user-key-" + id))),
        cert(crypto::IssueCertificate(id, "user", key.public_key(), key, "")) {
  }
};

// A full service under simulation: nodes, consortium, users, clients.
class ServiceHarness {
 public:
  explicit ServiceHarness(sim::EnvOptions env_options = {},
                          int num_members = 3)
      : env_(env_options), consortium_(num_members) {}

  sim::Environment& env() { return env_; }
  Consortium& consortium() { return consortium_; }

  // Benchmarks tweak node configs (TEE mode, signature cadence) before
  // nodes start.
  void SetConfigTweak(std::function<void(node::NodeConfig*)> tweak) {
    config_tweak_ = std::move(tweak);
  }

  // Starts the genesis node (n0) with the logging app.
  node::Node* StartGenesis(bool open_immediately = true,
                           node::Application* app = nullptr) {
    node::ServiceInit init;
    init.members = consortium_.Identities();
    init.open_immediately = open_immediately;
    for (auto& [id, user] : users_) {
      init.initial_users.emplace_back(id, user->cert.Serialize());
    }
    node::NodeConfig cfg = FastNodeConfig("n0");
    if (config_tweak_) config_tweak_(&cfg);
    auto n = node::Node::CreateGenesis(cfg, init,
                                       app != nullptr ? app : &logging_app_,
                                       &env_);
    node::Node* ptr = n.get();
    nodes_["n0"] = std::move(n);
    env_.Step(5);
    return ptr;
  }

  // Adds a user before genesis.
  TestUser* AddUser(const std::string& id) {
    users_[id] = std::make_unique<TestUser>(id);
    return users_[id].get();
  }

  // Starts node `id` as a joiner and drives governance to trust it.
  node::Node* JoinAndTrust(const std::string& id, uint64_t timeout_ms = 8000,
                           node::Application* app = nullptr) {
    node::Node* joiner = Join(id, app);
    if (joiner == nullptr) return nullptr;
    if (!env_.RunUntil([&] { return joiner->has_joined(); }, timeout_ms)) {
      return nullptr;
    }
    if (!TrustNode(id, timeout_ms)) return nullptr;
    return joiner;
  }

  node::Node* Join(const std::string& id, node::Application* app = nullptr) {
    node::NodeConfig cfg =
        FastNodeConfig(id, std::hash<std::string>{}(id) % 1000);
    if (config_tweak_) config_tweak_(&cfg);
    auto n = node::Node::CreateJoiner(
        cfg, nodes_["n0"]->service_identity(), "n0",
        app != nullptr ? app : &logging_app_, &env_);
    node::Node* ptr = n.get();
    nodes_[id] = std::move(n);
    return ptr;
  }

  // Proposes transition_node_to_trusted and votes it through.
  bool TrustNode(const std::string& id, uint64_t timeout_ms = 8000) {
    json::Object args;
    args["node_id"] = id;
    auto outcome = RunProposal("transition_node_to_trusted",
                               json::Value(std::move(args)), timeout_ms);
    if (!outcome) return false;
    // Wait until the node participates and its reconfiguration has
    // committed everywhere: each live node prunes to a single active
    // configuration containing the joiner. Stopping at mere append would
    // leave the old configuration active, and a primary failure in that
    // window stalls elections on the old quorum (inherent to
    // reconfiguration, paper §4.4) -- not what these tests exercise.
    return env_.RunUntil(
        [&] {
          node::Node* n = node(id);
          if (n == nullptr || !n->has_joined()) return false;
          for (auto& [nid, peer] : nodes_) {
            if (!env_.IsUp(nid) || peer->retired()) continue;
            const auto& configs = peer->raft().active_configs();
            if (configs.size() != 1 || configs.front().nodes.count(id) == 0) {
              return false;
            }
          }
          return true;
        },
        timeout_ms);
  }

  // Submits {actions: [{name, args}]} and votes yes with a majority.
  // Returns true if accepted.
  bool RunProposal(const std::string& action, json::Value args,
                   uint64_t timeout_ms = 8000) {
    json::Object act;
    act["name"] = action;
    act["args"] = std::move(args);
    json::Object proposal;
    proposal["actions"] = json::Array{json::Value(std::move(act))};
    json::Object body;
    body["proposal"] = std::move(proposal);

    node::Client* m0 = MemberClient(0);
    auto resp = m0->PostJsonSigned("/gov/propose", json::Value(body),
                                   timeout_ms);
    if (!resp.ok() || resp->status != 200) return false;
    auto parsed = json::Parse(ToString(resp->body));
    if (!parsed.ok()) return false;
    std::string pid = parsed->GetString("proposal_id");
    std::string state = parsed->GetString("state");

    // Vote with members until accepted.
    for (size_t i = 0; i < consortium_.members.size() && state == "Open";
         ++i) {
      json::Object ballot;
      ballot["proposal_id"] = pid;
      ballot["ballot"] =
          "function vote(proposal, proposer_id) { return true; }";
      auto vresp = MemberClient(i)->PostJsonSigned(
          "/gov/vote", json::Value(std::move(ballot)), timeout_ms);
      if (!vresp.ok() || vresp->status != 200) return false;
      auto vparsed = json::Parse(ToString(vresp->body));
      if (!vparsed.ok()) return false;
      state = vparsed->GetString("state");
    }
    return state == "Accepted";
  }

  node::Node* node(const std::string& id) {
    auto it = nodes_.find(id);
    return it != nodes_.end() ? it->second.get() : nullptr;
  }
  std::map<std::string, std::unique_ptr<node::Node>>& nodes() {
    return nodes_;
  }

  node::Node* Primary() {
    node::Node* best = nullptr;
    for (auto& [id, n] : nodes_) {
      if (!env_.IsUp(id)) continue;
      if (n->IsPrimary() && (best == nullptr || n->view() > best->view())) {
        best = n.get();
      }
    }
    return best;
  }

  // A client for user `id`, connected to `node_id`.
  node::Client* UserClient(const std::string& user_id,
                           const std::string& node_id = "n0") {
    std::string key = "client-" + user_id + "@" + node_id;
    auto it = clients_.find(key);
    if (it == clients_.end()) {
      TestUser* user = users_.at(user_id).get();
      auto client = std::make_unique<node::Client>(
          key, &env_, nodes_.at("n0")->service_identity(), &user->key,
          user->cert);
      client->Connect(node_id);
      it = clients_.emplace(key, std::move(client)).first;
    }
    return it->second.get();
  }

  node::Client* MemberClient(size_t idx, const std::string& node_id = "n0") {
    auto& m = consortium_.members.at(idx);
    std::string key = "client-" + m.id + "@" + node_id;
    auto it = clients_.find(key);
    if (it == clients_.end()) {
      auto client = std::make_unique<node::Client>(
          key, &env_, nodes_.at("n0")->service_identity(), &m.key, m.cert);
      client->Connect(node_id);
      it = clients_.emplace(key, std::move(client)).first;
    }
    return it->second.get();
  }

  node::Client* AnonymousClient(const std::string& node_id = "n0") {
    std::string key = "client-anon@" + node_id;
    auto it = clients_.find(key);
    if (it == clients_.end()) {
      auto client = std::make_unique<node::Client>(
          key, &env_, nodes_.at("n0")->service_identity());
      client->Connect(node_id);
      it = clients_.emplace(key, std::move(client)).first;
    }
    return it->second.get();
  }

  void DropClients() { clients_.clear(); }

  // -------------------------------------------------------- invariants

  // Application-level convergence digest for a node: commit seqno, the
  // Merkle root over the committed prefix, and the committed KV state.
  static Bytes StateDigest(node::Node* n) {
    Bytes out;
    uint64_t commit = n->commit_seqno();
    for (int i = 0; i < 8; ++i) {
      out.push_back(static_cast<uint8_t>(commit >> (8 * i)));
    }
    auto root = n->tree().RootAt(commit);
    if (root.ok()) out.insert(out.end(), root->begin(), root->end());
    auto kv_digest =
        crypto::Sha256::Hash(kv::SerializeState(n->store().committed_state()));
    out.insert(out.end(), kv_digest.begin(), kv_digest.end());
    return out;
  }

  // Tracks a joined node in the invariant checker.
  void TrackNode(const std::string& id) {
    node::Node* n = node(id);
    if (n == nullptr || !n->has_joined()) return;
    checker_.Track(id, &n->raft(), [n] { return StateDigest(n); });
  }
  // Must be called before destroying a node the checker observes.
  void UntrackNode(const std::string& id) { checker_.Untrack(id); }

  // Wires the checker over every joined node and attaches it to the
  // environment (observes after every simulator step). Call TrackNode for
  // nodes that join later.
  sim::InvariantChecker& EnableInvariantChecker() {
    for (auto& [id, n] : nodes_) TrackNode(id);
    checker_.Attach(&env_);
    return checker_;
  }
  sim::InvariantChecker& checker() { return checker_; }

  // Waits until `seqno` is committed on all live, joined nodes.
  bool WaitForCommitEverywhere(uint64_t seqno, uint64_t timeout_ms = 8000) {
    return env_.RunUntil(
        [&] {
          for (auto& [id, n] : nodes_) {
            if (!env_.IsUp(id) || !n->has_joined()) continue;
            if (!n->raft().InActiveConfig()) continue;
            if (n->commit_seqno() < seqno) return false;
          }
          return true;
        },
        timeout_ms);
  }

 private:
  sim::Environment env_;
  Consortium consortium_;
  std::function<void(node::NodeConfig*)> config_tweak_;
  apps::LoggingApp logging_app_;
  std::map<std::string, std::unique_ptr<node::Node>> nodes_;
  std::map<std::string, std::unique_ptr<TestUser>> users_;
  std::map<std::string, std::unique_ptr<node::Client>> clients_;
  sim::InvariantChecker checker_;
};

}  // namespace ccf::testing

#endif  // CCF_TESTS_SERVICE_HARNESS_H_
