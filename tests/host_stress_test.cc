// Session-manager stress (ISSUE satellite): many client threads hammer a
// single live node with connect / pipelined-request / disconnect churn,
// including abrupt disconnects with responses still in flight. Exercises
// the IO thread's session bookkeeping, the enclave's kSessionClosed /
// kCloseSession paths, and the ticker/transport shutdown order.
//
// Built like any other test; run it under `-DCCF_SANITIZE=thread` for the
// TSan variant (the host subsystem is the only multi-threaded producer in
// the tree).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "tests/live_harness.h"

namespace ccf::testing {
namespace {

TEST(HostStress, ConnectRequestDisconnectChurn) {
  LiveServiceHarness h;
  h.AddUser("alice");
  host::LiveNodeHost* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  const uint16_t port = n0->rpc_port();
  const auto identity =
      n0->WithNode([](node::Node* n) { return n->service_identity(); });

  TestUser alice("alice");
  constexpr int kThreads = 8;
  constexpr int kRounds = 6;
  std::atomic<uint64_t> ok_responses{0};
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        host::LiveClient client(
            "stress-" + std::to_string(t) + "-" + std::to_string(round),
            identity, &alice.key, alice.cert);
        if (!client.Connect("127.0.0.1", port, 5000).ok()) {
          failures.fetch_add(1);
          continue;
        }
        // Pipeline a burst, then either drain it or hang up on it.
        const bool abandon = (t + round) % 3 == 0;
        constexpr int kBurst = 5;
        std::atomic<int> got{0};
        for (int i = 0; i < kBurst; ++i) {
          json::Object body;
          body["id"] = static_cast<uint64_t>(100 + t);
          body["msg"] = "r" + std::to_string(round) + "i" + std::to_string(i);
          http::Request req;
          req.method = "POST";
          req.path = "/app/log";
          req.headers["content-type"] = "application/json";
          req.body = ToBytes(json::Value(std::move(body)).Dump());
          client.SendRequest(std::move(req),
                             [&](Result<http::Response> resp) {
                               if (resp.ok() && resp->status == 200) {
                                 ok_responses.fetch_add(1);
                                 got.fetch_add(1);
                               }
                             });
        }
        if (abandon) continue;  // destructor closes with requests in flight
        uint64_t deadline = host::SteadyNowMs() + 5000;
        while (got.load() < kBurst && host::SteadyNowMs() < deadline) {
          if (!client.PollOnce(10)) break;
        }
        if (got.load() < kBurst) failures.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(ok_responses.load(), 0u);

  // The node is still healthy: a fresh client reads back data, and the
  // enclave no longer tracks any of the churned sessions.
  host::LiveClient* check = h.UserClient("alice");
  ASSERT_NE(check, nullptr);
  auto read = check->Get("/app/log?id=100");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->status, 200);
  // All abandoned connections eventually tear down host-side.
  EXPECT_TRUE(LiveWaitFor(
      [&] { return n0->transport().live_connections() <= 2; }, 5000));
}

}  // namespace
}  // namespace ccf::testing
