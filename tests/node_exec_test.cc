// Batched optimistic request execution (DESIGN.md §12): pipelined client
// traffic forms multi-request batches that execute speculatively against a
// shared store snapshot; a serial commit point validates read-sets in
// submission order and re-executes losers. These tests drive the real
// node/session/HTTP stack in the simulator and assert on behavior and the
// exec.* metrics the path exports.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "json/json.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

struct Collected {
  std::vector<int> statuses;
  std::vector<std::string> bodies;
  size_t errors = 0;
};

// Fires `requests` through `c` fire-and-forget (so they pipeline into the
// node's inbox and can batch), then drives the sim until all responses
// arrive.
Collected Pipeline(ServiceHarness* h, node::Client* c,
                   std::vector<http::Request> requests,
                   uint64_t timeout_ms = 5000) {
  Collected out;
  size_t expected = requests.size();
  for (http::Request& r : requests) {
    c->SendRequest(std::move(r), [&out](Result<http::Response> resp) {
      if (!resp.ok()) {
        ++out.errors;
        out.statuses.push_back(-1);
        out.bodies.push_back(resp.status().ToString());
        return;
      }
      out.statuses.push_back(resp->status);
      out.bodies.push_back(ToString(resp->body));
    });
  }
  h->env().RunUntil(
      [&] { return out.statuses.size() + out.errors >= expected; },
      timeout_ms);
  return out;
}

http::Request PostReq(const std::string& path, json::Object body) {
  http::Request r;
  r.method = "POST";
  r.path = path;
  r.body = ToBytes(json::Value(std::move(body)).Dump());
  r.headers["content-type"] = "application/json";
  return r;
}

http::Request GetReq(const std::string& path) {
  http::Request r;
  r.method = "GET";
  r.path = path;
  return r;
}

// Pipelined traffic actually batches: requests parsed from the inbox in
// one drain pass execute as one batch, visible as exec.batches growing
// slower than exec.requests.
TEST(NodeExecTest, PipelinedRequestsFormBatches) {
  ServiceHarness h;
  h.SetConfigTweak(
      [](node::NodeConfig* cfg) { cfg->exec_threads = 2; });
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  node::Client* c = h.UserClient("alice");

  // Seed one message, then pipeline a read-heavy mix.
  json::Object seedmsg;
  seedmsg["id"] = 1;
  seedmsg["msg"] = "hello";
  auto w = c->PostJson("/app/log", json::Value(std::move(seedmsg)));
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->status, 200);

  uint64_t requests_before = n0->metrics().ScalarValue("exec.requests");
  uint64_t batches_before = n0->metrics().ScalarValue("exec.batches");

  const int kN = 24;
  std::vector<http::Request> reqs;
  for (int i = 0; i < kN; ++i) {
    if (i % 4 == 3) {
      json::Object msg;
      msg["id"] = 10 + i;
      msg["msg"] = "m" + std::to_string(i);
      reqs.push_back(PostReq("/app/log", std::move(msg)));
    } else {
      reqs.push_back(GetReq("/app/log?id=1"));
    }
  }
  Collected got = Pipeline(&h, c, std::move(reqs));
  ASSERT_EQ(got.errors, 0u);
  ASSERT_EQ(got.statuses.size(), static_cast<size_t>(kN));
  for (int s : got.statuses) EXPECT_EQ(s, 200);

  uint64_t requests_after = n0->metrics().ScalarValue("exec.requests");
  uint64_t batches_after = n0->metrics().ScalarValue("exec.batches");
  EXPECT_GE(requests_after - requests_before, static_cast<uint64_t>(kN));
  EXPECT_GE(batches_after - batches_before, 1u);
  // The whole point: fewer batches than requests => real multi-request
  // batches executed on the worker pool.
  EXPECT_LT(batches_after - batches_before, requests_after - requests_before);

  // Read-only traffic never conflicts (it skips read-set validation).
  uint64_t conflicts = n0->metrics().ScalarValue("exec.conflicts");
  Collected ro = Pipeline(&h, c, {GetReq("/app/log?id=1"),
                                  GetReq("/app/hashread?id=1"),
                                  GetReq("/app/count")});
  ASSERT_EQ(ro.errors, 0u);
  for (int s : ro.statuses) EXPECT_EQ(s, 200);
  EXPECT_EQ(n0->metrics().ScalarValue("exec.conflicts"), conflicts);
}

// Contended read-modify-writes in one batch: exactly one wins the
// speculative round, the rest re-execute serially at the commit point.
// Every request succeeds, the counter ends exact, and the conflict/retry
// counters prove OCC actually engaged.
TEST(NodeExecTest, ContendedRmwRetriesAndStaysExact) {
  ServiceHarness h;
  h.SetConfigTweak(
      [](node::NodeConfig* cfg) { cfg->exec_threads = 4; });
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  node::Client* c = h.UserClient("alice");
  // Establish the session outside the measured window.
  ASSERT_TRUE(c->Get("/app/count").ok());

  const int kN = 12;
  std::vector<http::Request> reqs;
  for (int i = 0; i < kN; ++i) {
    json::Object body;
    body["id"] = 7;
    reqs.push_back(PostReq("/app/rmw", std::move(body)));
  }
  Collected got = Pipeline(&h, c, std::move(reqs));
  ASSERT_EQ(got.errors, 0u);
  ASSERT_EQ(got.statuses.size(), static_cast<size_t>(kN));
  std::set<int64_t> values;
  for (size_t i = 0; i < got.statuses.size(); ++i) {
    ASSERT_EQ(got.statuses[i], 200) << got.bodies[i];
    auto body = json::Parse(got.bodies[i]);
    ASSERT_TRUE(body.ok());
    values.insert(body->GetInt("value"));
  }
  // No lost updates, no double counting: the kN responses carry exactly
  // the values 1..kN.
  EXPECT_EQ(values.size(), static_cast<size_t>(kN));
  EXPECT_EQ(*values.begin(), 1);
  EXPECT_EQ(*values.rbegin(), kN);

  json::Object probe;
  probe["id"] = 7;
  auto final_resp = c->PostJson("/app/rmw", json::Value(std::move(probe)));
  ASSERT_TRUE(final_resp.ok());
  ASSERT_EQ(final_resp->status, 200);
  auto final_body = json::Parse(ToString(final_resp->body));
  ASSERT_TRUE(final_body.ok());
  EXPECT_EQ(final_body->GetInt("value"), kN + 1);

  // OCC engaged: conflicts were detected and losers re-executed.
  EXPECT_GT(n0->metrics().ScalarValue("exec.conflicts"), 0u);
  EXPECT_GT(n0->metrics().ScalarValue("exec.retries"), 0u);
  // Nothing hit the bounded-retry ceiling (serial re-execution always
  // makes progress under this workload).
  EXPECT_EQ(n0->metrics().ScalarValue("exec.aborts"), 0u);
}

// The same pipelined mixed workload produces byte-identical response
// streams with the pool off (inline) and on: parallel speculation is an
// implementation detail, never an observable one.
TEST(NodeExecTest, ExecThreadsDoNotChangeResponses) {
  auto run = [](uint64_t exec_threads) {
    ServiceHarness h;
    h.SetConfigTweak([exec_threads](node::NodeConfig* cfg) {
      cfg->exec_threads = exec_threads;
    });
    h.AddUser("alice");
    ServiceHarness* hp = &h;
    if (h.StartGenesis() == nullptr) return Collected{};
    node::Client* c = h.UserClient("alice");
    auto warm = c->Get("/app/count");
    if (!warm.ok()) return Collected{};

    std::vector<http::Request> reqs;
    for (int i = 0; i < 20; ++i) {
      switch (i % 4) {
        case 0: {
          json::Object msg;
          msg["id"] = i;
          msg["msg"] = "det-" + std::to_string(i);
          reqs.push_back(PostReq("/app/log", std::move(msg)));
          break;
        }
        case 1: {
          json::Object body;
          body["id"] = i % 3;
          reqs.push_back(PostReq("/app/rmw", std::move(body)));
          break;
        }
        case 2:
          reqs.push_back(GetReq("/app/log?id=" + std::to_string(i - 2)));
          break;
        default:
          reqs.push_back(GetReq("/app/count"));
      }
    }
    return Pipeline(hp, c, std::move(reqs));
  };

  Collected inline_run = run(0);
  Collected pooled_run = run(4);
  ASSERT_EQ(inline_run.errors, 0u);
  ASSERT_EQ(pooled_run.errors, 0u);
  ASSERT_EQ(inline_run.statuses.size(), 20u);
  EXPECT_EQ(inline_run.statuses, pooled_run.statuses);
  EXPECT_EQ(inline_run.bodies, pooled_run.bodies);
}

}  // namespace
}  // namespace ccf::testing
