#include <gtest/gtest.h>

#include <vector>

#include "sim/environment.h"

namespace ccf::sim {
namespace {

struct Recorder {
  std::vector<std::pair<std::string, std::string>> received;  // (from, msg)
  uint64_t ticks = 0;

  void Register(Environment* env, const std::string& id) {
    env->Register(
        id,
        [this](const std::string& from, ByteSpan data) {
          received.emplace_back(from, ToString(data));
        },
        [this](uint64_t) { ++ticks; });
  }
};

TEST(SimEnvironment, DeliversWithinLatencyBounds) {
  EnvOptions opts;
  opts.min_latency_ms = 2;
  opts.max_latency_ms = 5;
  Environment env(opts);
  Recorder a, b;
  a.Register(&env, "a");
  b.Register(&env, "b");

  env.Send("a", "b", ToBytes("hello"));
  env.Step(1);
  EXPECT_TRUE(b.received.empty());  // min latency 2ms
  env.Step(5);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].first, "a");
  EXPECT_EQ(b.received[0].second, "hello");
}

TEST(SimEnvironment, FifoPerDirectedLink) {
  // STLS records rely on in-order delivery per (from, to) pair.
  EnvOptions opts;
  opts.min_latency_ms = 1;
  opts.max_latency_ms = 10;  // lots of jitter
  Environment env(opts);
  Recorder a, b;
  a.Register(&env, "a");
  b.Register(&env, "b");
  for (int i = 0; i < 50; ++i) {
    env.Send("a", "b", ToBytes(std::to_string(i)));
  }
  env.Step(50);
  ASSERT_EQ(b.received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.received[i].second, std::to_string(i)) << i;
  }
}

TEST(SimEnvironment, CrashedProcessDropsMessagesAndTicks) {
  Environment env;
  Recorder a, b;
  a.Register(&env, "a");
  b.Register(&env, "b");
  env.SetUp("b", false);
  env.Send("a", "b", ToBytes("lost"));
  env.Step(20);
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(b.ticks, 0u);
  // Restart: future messages arrive, old ones are gone.
  env.SetUp("b", true);
  env.Send("a", "b", ToBytes("found"));
  env.Step(20);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].second, "found");
  EXPECT_GT(b.ticks, 0u);
}

TEST(SimEnvironment, PartitionsAreSymmetricAndRevocable) {
  Environment env;
  Recorder a, b;
  a.Register(&env, "a");
  b.Register(&env, "b");
  env.SetPartitioned("a", "b", true);
  env.Send("a", "b", ToBytes("blocked"));
  env.Send("b", "a", ToBytes("blocked"));
  env.Step(20);
  EXPECT_TRUE(a.received.empty());
  EXPECT_TRUE(b.received.empty());
  env.SetPartitioned("a", "b", false);
  env.Send("a", "b", ToBytes("open"));
  env.Step(20);
  EXPECT_EQ(b.received.size(), 1u);
}

TEST(SimEnvironment, IsolateBlocksAllPeers) {
  Environment env;
  Recorder a, b, c;
  a.Register(&env, "a");
  b.Register(&env, "b");
  c.Register(&env, "c");
  env.Isolate("a", true);
  env.Send("b", "a", ToBytes("x"));
  env.Send("c", "a", ToBytes("y"));
  env.Send("b", "c", ToBytes("z"));
  env.Step(20);
  EXPECT_TRUE(a.received.empty());
  ASSERT_EQ(c.received.size(), 1u);  // unrelated pair unaffected
}

TEST(SimEnvironment, DeterministicGivenSeed) {
  auto run = [](uint64_t seed) {
    EnvOptions opts;
    opts.seed = seed;
    opts.min_latency_ms = 1;
    opts.max_latency_ms = 7;
    opts.drop_probability = 0.2;
    Environment env(opts);
    Recorder a, b;
    a.Register(&env, "a");
    b.Register(&env, "b");
    std::vector<std::string> log;
    env.Register(
        "probe",
        [&log](const std::string& from, ByteSpan data) {
          log.push_back(from + ":" + ToString(data));
        },
        [](uint64_t) {});
    for (int i = 0; i < 100; ++i) {
      env.Send("a", "probe", ToBytes("m" + std::to_string(i)));
      env.Step(1);
    }
    env.Step(20);
    return log;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // different seed, different drops/latencies
}

TEST(SimEnvironment, DropProbabilityDropsSome) {
  EnvOptions opts;
  opts.drop_probability = 0.5;
  Environment env(opts);
  Recorder a, b;
  a.Register(&env, "a");
  b.Register(&env, "b");
  for (int i = 0; i < 200; ++i) env.Send("a", "b", ToBytes("m"));
  env.Step(30);
  EXPECT_GT(b.received.size(), 20u);
  EXPECT_LT(b.received.size(), 180u);
}

TEST(SimEnvironment, RunUntilStopsEarlyOrTimesOut) {
  Environment env;
  Recorder a;
  a.Register(&env, "a");
  uint64_t start = env.now_ms();
  bool hit = env.RunUntil([&] { return env.now_ms() >= start + 5; }, 100);
  EXPECT_TRUE(hit);
  EXPECT_LT(env.now_ms(), start + 20);
  bool never = env.RunUntil([] { return false; }, 50);
  EXPECT_FALSE(never);
}

}  // namespace
}  // namespace ccf::sim
