#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "tee/attestation.h"
#include "tee/boundary.h"
#include "tee/worker_pool.h"

namespace ccf::tee {
namespace {

// ------------------------------------------------------------ WorkerPool

TEST(WorkerPool, SyncModeRunsJobAtSubmit) {
  WorkerPool pool(0);
  int job_ran = 0, completion_ran = 0;
  pool.Submit([&] { ++job_ran; }, [&] { ++completion_ran; });
  // worker_threads == 0: the job itself runs inline at Submit...
  EXPECT_EQ(job_ran, 1);
  // ...but the completion still waits for the drain point, so its place
  // in virtual time is identical to the threaded modes.
  EXPECT_EQ(completion_ran, 0);
  EXPECT_TRUE(pool.HasPending());
  EXPECT_EQ(pool.Drain(), 1u);
  EXPECT_EQ(completion_ran, 1);
  EXPECT_FALSE(pool.HasPending());
}

TEST(WorkerPool, BlockingDrainPreservesSubmissionOrder) {
  WorkerPool pool(4);
  std::vector<int> completions;
  std::atomic<int> jobs_done{0};
  for (int i = 0; i < 32; ++i) {
    pool.Submit([&jobs_done] { ++jobs_done; },
                [&completions, i] { completions.push_back(i); });
  }
  EXPECT_EQ(pool.Drain(/*wait_all=*/true), 32u);
  EXPECT_EQ(jobs_done.load(), 32);
  ASSERT_EQ(completions.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(completions[i], i);
}

TEST(WorkerPool, NonBlockingDrainStopsAtFirstUnfinished) {
  WorkerPool pool(1);
  std::atomic<bool> release{false};
  std::atomic<int> done{0};
  // First job blocks the single worker; the second can't start.
  pool.Submit(
      [&] {
        while (!release.load()) std::this_thread::yield();
      },
      [&] { ++done; });
  pool.Submit([] {}, [&] { ++done; });
  EXPECT_EQ(pool.Drain(/*wait_all=*/false), 0u);
  EXPECT_EQ(done.load(), 0);
  release.store(true);
  // Blocking drain finishes both, in order.
  EXPECT_EQ(pool.Drain(/*wait_all=*/true), 2u);
  EXPECT_EQ(done.load(), 2);
}

TEST(WorkerPool, CountersTrackSubmissionAndDrain) {
  WorkerPool pool(2);
  EXPECT_EQ(pool.worker_count(), 2u);
  for (int i = 0; i < 5; ++i) pool.Submit([] {}, [] {});
  EXPECT_EQ(pool.submitted(), 5u);
  pool.Drain(/*wait_all=*/true);
  EXPECT_EQ(pool.drained(), 5u);
}

TEST(WorkerPool, DestructorAbandonsUndrainedWork) {
  int completions = 0;
  {
    WorkerPool pool(2);
    for (int i = 0; i < 8; ++i) {
      pool.Submit([] {}, [&completions] { ++completions; });
    }
    // No drain: completions must not run during destruction (they may
    // reference state that is being torn down in the enclave).
  }
  EXPECT_EQ(completions, 0);
}

// Stress for TSan (mirrors RingBuffer.MultiProducerContendedSmallBufferStress):
// many rounds of submit + mixed blocking/non-blocking drains race worker
// threads against the enclave thread.
TEST(WorkerPool, SubmitDrainStress) {
  WorkerPool pool(4);
  std::atomic<uint64_t> job_sum{0};
  uint64_t completion_sum = 0;
  uint64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    int n = 1 + round % 7;
    for (int i = 0; i < n; ++i) {
      uint64_t v = round * 100 + i;
      expected += v;
      pool.Submit([&job_sum, v] { job_sum += v; },
                  [&completion_sum, v] { completion_sum += v; });
    }
    pool.Drain(/*wait_all=*/round % 3 != 0);
  }
  pool.Drain(/*wait_all=*/true);
  EXPECT_EQ(job_sum.load(), expected);
  EXPECT_EQ(completion_sum, expected);
}

TEST(WorkerPool, SubmitBatchSyncModeRunsInlineInIndexOrder) {
  WorkerPool pool(0);
  std::vector<int> order;
  std::vector<WorkerPool::Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([&order, i] { order.push_back(i); });
  }
  pool.SubmitBatch(std::move(jobs));
  // workers == 0: the batch ran inline at SubmitBatch, in index order --
  // this is what makes exec_threads=0 the bit-identical baseline for the
  // OCC request scheduler.
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
  // Batch jobs carry no completions; the drain just retires them.
  EXPECT_TRUE(pool.HasPending());
  pool.Drain(/*wait_all=*/true);
  EXPECT_FALSE(pool.HasPending());
  EXPECT_EQ(pool.submitted(), 8u);
  EXPECT_EQ(pool.drained(), 8u);
}

TEST(WorkerPool, SubmitBatchThreadedFillsDisjointSlots) {
  WorkerPool pool(4);
  std::vector<uint64_t> slots(64, 0);
  std::vector<WorkerPool::Job> jobs;
  for (size_t i = 0; i < slots.size(); ++i) {
    jobs.push_back([&slots, i] { slots[i] = i + 1; });
  }
  pool.SubmitBatch(std::move(jobs));
  pool.Drain(/*wait_all=*/true);
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], i + 1) << "slot " << i;
  }
}

// TSan stress for the OCC flush pattern: rounds of SubmitBatch + blocking
// drain, with plain Submit()s interleaved to race the two enqueue paths,
// all while worker threads contend for the shared queue.
TEST(WorkerPool, SubmitBatchDrainStress) {
  WorkerPool pool(4);
  std::atomic<uint64_t> job_sum{0};
  uint64_t completion_sum = 0;
  uint64_t expected_jobs = 0;
  uint64_t expected_completions = 0;
  for (int round = 0; round < 200; ++round) {
    size_t n = 1 + round % 9;
    std::vector<WorkerPool::Job> jobs;
    for (size_t i = 0; i < n; ++i) {
      uint64_t v = round * 100 + i;
      expected_jobs += v;
      jobs.push_back([&job_sum, v] { job_sum += v; });
    }
    pool.SubmitBatch(std::move(jobs));
    if (round % 2 == 0) {
      uint64_t v = round;
      expected_jobs += v;
      expected_completions += v;
      pool.Submit([&job_sum, v] { job_sum += v; },
                  [&completion_sum, v] { completion_sum += v; });
    }
    pool.Drain(/*wait_all=*/true);
  }
  EXPECT_EQ(job_sum.load(), expected_jobs);
  EXPECT_EQ(completion_sum, expected_completions);
  EXPECT_FALSE(pool.HasPending());
}

TEST(Attestation, QuoteVerifies) {
  crypto::KeyPair node_key = crypto::KeyPair::FromSeed(ToBytes("node"));
  auto report = ReportDataForNodeKey(node_key.public_key());
  Quote q = Platform::Global().GenerateQuote("codeid-v1", report);
  EXPECT_TRUE(Platform::Global().VerifyQuote(q).ok());
  EXPECT_EQ(q.code_id, "codeid-v1");
}

TEST(Attestation, TamperedQuoteRejected) {
  crypto::KeyPair node_key = crypto::KeyPair::FromSeed(ToBytes("node"));
  auto report = ReportDataForNodeKey(node_key.public_key());
  Quote q = Platform::Global().GenerateQuote("codeid-v1", report);
  // Change the claimed code id: the signature no longer covers it.
  Quote bad = q;
  bad.code_id = "codeid-evil";
  EXPECT_FALSE(Platform::Global().VerifyQuote(bad).ok());
  // Change report data (rebinding to another node key).
  bad = q;
  bad.report_data[0] ^= 1;
  EXPECT_FALSE(Platform::Global().VerifyQuote(bad).ok());
}

TEST(Attestation, QuoteSerializationRoundTrip) {
  auto report = ReportDataForNodeKey(
      crypto::KeyPair::FromSeed(ToBytes("n")).public_key());
  Quote q = Platform::Global().GenerateQuote("abc", report);
  auto back = Quote::Deserialize(q.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->code_id, "abc");
  EXPECT_TRUE(Platform::Global().VerifyQuote(*back).ok());
  Bytes truncated = q.Serialize();
  truncated.pop_back();
  EXPECT_FALSE(Quote::Deserialize(truncated).ok());
}

TEST(Attestation, ReportDataBindsKey) {
  auto a = ReportDataForNodeKey(
      crypto::KeyPair::FromSeed(ToBytes("a")).public_key());
  auto b = ReportDataForNodeKey(
      crypto::KeyPair::FromSeed(ToBytes("b")).public_key());
  EXPECT_NE(a, b);
}

class BoundaryTest : public ::testing::TestWithParam<TeeMode> {};

TEST_P(BoundaryTest, RoundTripBothDirections) {
  EnclaveBoundary boundary(GetParam());
  ASSERT_TRUE(boundary.HostSend(7, ToBytes("to-enclave")));
  uint32_t type;
  Bytes payload;
  ASSERT_TRUE(boundary.EnclaveReceive(&type, &payload));
  EXPECT_EQ(type, 7u);
  EXPECT_EQ(ToString(payload), "to-enclave");

  ASSERT_TRUE(boundary.EnclaveSend(9, ToBytes("to-host")));
  ASSERT_TRUE(boundary.HostReceive(&type, &payload));
  EXPECT_EQ(type, 9u);
  EXPECT_EQ(ToString(payload), "to-host");

  EXPECT_FALSE(boundary.EnclaveReceive(&type, &payload));
  EXPECT_FALSE(boundary.HostReceive(&type, &payload));
  EXPECT_EQ(boundary.host_to_enclave_count(), 1u);
  EXPECT_EQ(boundary.enclave_to_host_count(), 1u);
}

TEST_P(BoundaryTest, ManyMessagesFifo) {
  EnclaveBoundary boundary(GetParam(), 1 << 12);
  crypto::Drbg drbg("boundary", 1);
  std::vector<Bytes> sent;
  size_t read_idx = 0;
  for (int i = 0; i < 500; ++i) {
    Bytes msg = drbg.Generate(drbg.Uniform(100));
    if (boundary.HostSend(1, msg)) {
      sent.push_back(msg);
    }
    if (i % 3 == 0) {
      uint32_t type;
      Bytes payload;
      while (boundary.EnclaveReceive(&type, &payload)) {
        ASSERT_LT(read_idx, sent.size());
        EXPECT_EQ(payload, sent[read_idx++]);
      }
    }
  }
  uint32_t type;
  Bytes payload;
  while (boundary.EnclaveReceive(&type, &payload)) {
    ASSERT_LT(read_idx, sent.size());
    EXPECT_EQ(payload, sent[read_idx++]);
  }
  EXPECT_EQ(read_idx, sent.size());
}

INSTANTIATE_TEST_SUITE_P(Modes, BoundaryTest,
                         ::testing::Values(TeeMode::kVirtual,
                                           TeeMode::kSgxSim),
                         [](const auto& info) {
                           return info.param == TeeMode::kVirtual
                                      ? "Virtual"
                                      : "SgxSim";
                         });

TEST(Boundary, SgxSimPayloadsAreSealedInTransit) {
  // In SGX-sim mode the bytes sitting in the ring buffer must not contain
  // the plaintext (stand-in for EPC memory encryption).
  EnclaveBoundary virt(TeeMode::kVirtual);
  EnclaveBoundary sgx(TeeMode::kSgxSim);
  Bytes secret = ToBytes("very-secret-payload-0123456789");
  ASSERT_TRUE(virt.HostSend(1, secret));
  ASSERT_TRUE(sgx.HostSend(1, secret));
  uint32_t type;
  Bytes virt_payload, sgx_payload;
  // Drain through the enclave side; both decode identically.
  ASSERT_TRUE(virt.EnclaveReceive(&type, &virt_payload));
  ASSERT_TRUE(sgx.EnclaveReceive(&type, &sgx_payload));
  EXPECT_EQ(virt_payload, secret);
  EXPECT_EQ(sgx_payload, secret);
}

}  // namespace
}  // namespace ccf::tee
