#include <gtest/gtest.h>

#include "tee/attestation.h"
#include "tee/boundary.h"

namespace ccf::tee {
namespace {

TEST(Attestation, QuoteVerifies) {
  crypto::KeyPair node_key = crypto::KeyPair::FromSeed(ToBytes("node"));
  auto report = ReportDataForNodeKey(node_key.public_key());
  Quote q = Platform::Global().GenerateQuote("codeid-v1", report);
  EXPECT_TRUE(Platform::Global().VerifyQuote(q).ok());
  EXPECT_EQ(q.code_id, "codeid-v1");
}

TEST(Attestation, TamperedQuoteRejected) {
  crypto::KeyPair node_key = crypto::KeyPair::FromSeed(ToBytes("node"));
  auto report = ReportDataForNodeKey(node_key.public_key());
  Quote q = Platform::Global().GenerateQuote("codeid-v1", report);
  // Change the claimed code id: the signature no longer covers it.
  Quote bad = q;
  bad.code_id = "codeid-evil";
  EXPECT_FALSE(Platform::Global().VerifyQuote(bad).ok());
  // Change report data (rebinding to another node key).
  bad = q;
  bad.report_data[0] ^= 1;
  EXPECT_FALSE(Platform::Global().VerifyQuote(bad).ok());
}

TEST(Attestation, QuoteSerializationRoundTrip) {
  auto report = ReportDataForNodeKey(
      crypto::KeyPair::FromSeed(ToBytes("n")).public_key());
  Quote q = Platform::Global().GenerateQuote("abc", report);
  auto back = Quote::Deserialize(q.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->code_id, "abc");
  EXPECT_TRUE(Platform::Global().VerifyQuote(*back).ok());
  Bytes truncated = q.Serialize();
  truncated.pop_back();
  EXPECT_FALSE(Quote::Deserialize(truncated).ok());
}

TEST(Attestation, ReportDataBindsKey) {
  auto a = ReportDataForNodeKey(
      crypto::KeyPair::FromSeed(ToBytes("a")).public_key());
  auto b = ReportDataForNodeKey(
      crypto::KeyPair::FromSeed(ToBytes("b")).public_key());
  EXPECT_NE(a, b);
}

class BoundaryTest : public ::testing::TestWithParam<TeeMode> {};

TEST_P(BoundaryTest, RoundTripBothDirections) {
  EnclaveBoundary boundary(GetParam());
  ASSERT_TRUE(boundary.HostSend(7, ToBytes("to-enclave")));
  uint32_t type;
  Bytes payload;
  ASSERT_TRUE(boundary.EnclaveReceive(&type, &payload));
  EXPECT_EQ(type, 7u);
  EXPECT_EQ(ToString(payload), "to-enclave");

  ASSERT_TRUE(boundary.EnclaveSend(9, ToBytes("to-host")));
  ASSERT_TRUE(boundary.HostReceive(&type, &payload));
  EXPECT_EQ(type, 9u);
  EXPECT_EQ(ToString(payload), "to-host");

  EXPECT_FALSE(boundary.EnclaveReceive(&type, &payload));
  EXPECT_FALSE(boundary.HostReceive(&type, &payload));
  EXPECT_EQ(boundary.host_to_enclave_count(), 1u);
  EXPECT_EQ(boundary.enclave_to_host_count(), 1u);
}

TEST_P(BoundaryTest, ManyMessagesFifo) {
  EnclaveBoundary boundary(GetParam(), 1 << 12);
  crypto::Drbg drbg("boundary", 1);
  std::vector<Bytes> sent;
  size_t read_idx = 0;
  for (int i = 0; i < 500; ++i) {
    Bytes msg = drbg.Generate(drbg.Uniform(100));
    if (boundary.HostSend(1, msg)) {
      sent.push_back(msg);
    }
    if (i % 3 == 0) {
      uint32_t type;
      Bytes payload;
      while (boundary.EnclaveReceive(&type, &payload)) {
        ASSERT_LT(read_idx, sent.size());
        EXPECT_EQ(payload, sent[read_idx++]);
      }
    }
  }
  uint32_t type;
  Bytes payload;
  while (boundary.EnclaveReceive(&type, &payload)) {
    ASSERT_LT(read_idx, sent.size());
    EXPECT_EQ(payload, sent[read_idx++]);
  }
  EXPECT_EQ(read_idx, sent.size());
}

INSTANTIATE_TEST_SUITE_P(Modes, BoundaryTest,
                         ::testing::Values(TeeMode::kVirtual,
                                           TeeMode::kSgxSim),
                         [](const auto& info) {
                           return info.param == TeeMode::kVirtual
                                      ? "Virtual"
                                      : "SgxSim";
                         });

TEST(Boundary, SgxSimPayloadsAreSealedInTransit) {
  // In SGX-sim mode the bytes sitting in the ring buffer must not contain
  // the plaintext (stand-in for EPC memory encryption).
  EnclaveBoundary virt(TeeMode::kVirtual);
  EnclaveBoundary sgx(TeeMode::kSgxSim);
  Bytes secret = ToBytes("very-secret-payload-0123456789");
  ASSERT_TRUE(virt.HostSend(1, secret));
  ASSERT_TRUE(sgx.HostSend(1, secret));
  uint32_t type;
  Bytes virt_payload, sgx_payload;
  // Drain through the enclave side; both decode identically.
  ASSERT_TRUE(virt.EnclaveReceive(&type, &virt_payload));
  ASSERT_TRUE(sgx.EnclaveReceive(&type, &sgx_payload));
  EXPECT_EQ(virt_payload, secret);
  EXPECT_EQ(sgx_payload, secret);
}

}  // namespace
}  // namespace ccf::tee
