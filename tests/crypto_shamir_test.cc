#include <algorithm>
#include <gtest/gtest.h>

#include "crypto/shamir.h"

namespace ccf::crypto {
namespace {

TEST(Shamir, SplitCombineRoundTrip) {
  Drbg drbg("shamir-1", 0);
  Bytes secret = drbg.Generate(32);
  auto shares = ShamirSplit(secret, 3, 5, &drbg);
  ASSERT_TRUE(shares.ok());
  ASSERT_EQ(shares->size(), 5u);
  auto recovered = ShamirCombine(*shares, 3);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(*recovered, secret);
}

TEST(Shamir, AnySubsetOfKSharesSuffices) {
  Drbg drbg("shamir-2", 0);
  Bytes secret = drbg.Generate(16);
  auto shares = ShamirSplit(secret, 2, 4, &drbg).take();
  // Try every 2-subset.
  for (size_t i = 0; i < shares.size(); ++i) {
    for (size_t j = i + 1; j < shares.size(); ++j) {
      std::vector<Share> subset = {shares[i], shares[j]};
      auto rec = ShamirCombine(subset, 2);
      ASSERT_TRUE(rec.ok());
      EXPECT_EQ(*rec, secret) << i << "," << j;
    }
  }
}

TEST(Shamir, ShuffledSharesStillRecover) {
  Drbg drbg("shamir-3", 0);
  Bytes secret = drbg.Generate(24);
  auto shares = ShamirSplit(secret, 4, 7, &drbg).take();
  std::reverse(shares.begin(), shares.end());
  auto rec = ShamirCombine(shares, 4);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, secret);
}

TEST(Shamir, FewerThanKSharesGivesWrongSecret) {
  Drbg drbg("shamir-4", 0);
  Bytes secret = drbg.Generate(32);
  auto shares = ShamirSplit(secret, 3, 5, &drbg).take();
  // Combining with k=2 from a k=3 split must not reveal the secret.
  std::vector<Share> two = {shares[0], shares[1]};
  auto rec = ShamirCombine(two, 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_NE(*rec, secret);
}

TEST(Shamir, KEqualsOneIsTheSecret) {
  Drbg drbg("shamir-5", 0);
  Bytes secret = drbg.Generate(8);
  auto shares = ShamirSplit(secret, 1, 3, &drbg).take();
  for (const Share& s : shares) {
    auto rec = ShamirCombine({s}, 1);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, secret);
  }
}

TEST(Shamir, KEqualsN) {
  Drbg drbg("shamir-6", 0);
  Bytes secret = drbg.Generate(10);
  auto shares = ShamirSplit(secret, 5, 5, &drbg).take();
  auto rec = ShamirCombine(shares, 5);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, secret);
}

TEST(Shamir, InvalidParametersRejected) {
  Drbg drbg("shamir-7", 0);
  Bytes secret = drbg.Generate(4);
  EXPECT_FALSE(ShamirSplit(secret, 0, 3, &drbg).ok());
  EXPECT_FALSE(ShamirSplit(secret, 4, 3, &drbg).ok());
  EXPECT_FALSE(ShamirSplit(secret, 1, 256, &drbg).ok());
}

TEST(Shamir, CombineValidation) {
  Drbg drbg("shamir-8", 0);
  Bytes secret = drbg.Generate(4);
  auto shares = ShamirSplit(secret, 2, 3, &drbg).take();
  // Not enough shares.
  EXPECT_FALSE(ShamirCombine({shares[0]}, 2).ok());
  // Duplicate index.
  EXPECT_FALSE(ShamirCombine({shares[0], shares[0]}, 2).ok());
  // Inconsistent lengths.
  auto bad = shares;
  bad[1].data.pop_back();
  EXPECT_FALSE(ShamirCombine({bad[0], bad[1]}, 2).ok());
  // Index zero.
  bad = shares;
  bad[0].index = 0;
  EXPECT_FALSE(ShamirCombine({bad[0], bad[1]}, 2).ok());
}

TEST(Shamir, EmptySecret) {
  Drbg drbg("shamir-9", 0);
  auto shares = ShamirSplit(Bytes{}, 2, 3, &drbg).take();
  auto rec = ShamirCombine(shares, 2);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(rec->empty());
}

// Property sweep across thresholds.
class ShamirParamTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ShamirParamTest, RoundTrip) {
  auto [k, n] = GetParam();
  Drbg drbg("shamir-param", static_cast<uint64_t>(k * 1000 + n));
  Bytes secret = drbg.Generate(32);
  auto shares = ShamirSplit(secret, k, n, &drbg);
  ASSERT_TRUE(shares.ok());
  auto rec = ShamirCombine(*shares, k);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(*rec, secret);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, ShamirParamTest,
    ::testing::Values(std::pair{1, 1}, std::pair{1, 5}, std::pair{2, 3},
                      std::pair{3, 5}, std::pair{5, 9}, std::pair{7, 10},
                      std::pair{10, 20}, std::pair{17, 31}));

}  // namespace
}  // namespace ccf::crypto
