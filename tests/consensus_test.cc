#include <gtest/gtest.h>

#include "consensus/raft.h"
#include "tests/raft_harness.h"

namespace ccf::testing {
namespace {

using consensus::TxStatus;

TEST(RaftBasics, GenesisPrimaryCommitsOwnSignature) {
  sim::Environment env;
  RaftTestNode n0("n0", FastRaftConfig(), {"n0"}, /*start_as_primary=*/true,
                  &env);
  EXPECT_TRUE(n0.raft().IsPrimary());
  EXPECT_EQ(n0.raft().view(), 1u);
  ASSERT_TRUE(n0.ReplicateUser("tx1").ok());
  ASSERT_TRUE(n0.ReplicateSignature().ok());
  // Single-node config: signature commits immediately.
  EXPECT_GE(n0.raft().commit_seqno(), 2u);
}

TEST(RaftBasics, CommitWaitsForSignature) {
  sim::Environment env;
  RaftTestNode n0("n0", FastRaftConfig(), {"n0"}, true, &env);
  n0.set_signature_interval(1000);  // no automatic signatures
  env.Step(5);                      // flush the becoming-primary signature
  uint64_t base_commit = n0.raft().commit_seqno();
  ASSERT_TRUE(n0.ReplicateUser("tx-a").ok());
  ASSERT_TRUE(n0.ReplicateUser("tx-b").ok());
  // User entries alone never advance commit (paper §3.2).
  EXPECT_EQ(n0.raft().commit_seqno(), base_commit);
  ASSERT_TRUE(n0.ReplicateSignature().ok());
  EXPECT_EQ(n0.raft().commit_seqno(), base_commit + 3);
}

TEST(RaftCluster3, ElectsExactlyOnePrimary) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  EXPECT_TRUE(cluster.AtMostOnePrimaryPerView());
  // All nodes converge on the same view and leader.
  cluster.env().Step(200);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.node(i).raft().view(), primary->raft().view());
  }
}

TEST(RaftCluster3, ReplicatesAndCommitsEverywhere) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary->ReplicateUser("tx" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(target));
  EXPECT_TRUE(cluster.AllInvariantsHold());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(cluster.node(i).raft().last_seqno(), target);
  }
}

TEST(RaftCluster3, PrimaryFailureTriggersFailover) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateUser("pre-failure").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t committed_before = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(committed_before));

  NodeId dead = primary->id();
  cluster.env().SetUp(dead, false);
  RaftTestNode* new_primary = cluster.WaitForPrimary();
  ASSERT_NE(new_primary, nullptr);
  EXPECT_NE(new_primary->id(), dead);
  EXPECT_GT(new_primary->raft().view(), 1u);

  // Service continues accepting writes.
  ASSERT_TRUE(new_primary->ReplicateUser("post-failure").ok());
  ASSERT_TRUE(new_primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        return new_primary->raft().commit_seqno() >=
               new_primary->raft().last_seqno();
      },
      5000));
  // Previously committed entries survive the failover.
  EXPECT_TRUE(cluster.CommittedPrefixesAgree());
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(RaftCluster5, ToleratesTwoFailures) {
  RaftCluster cluster(5);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  cluster.env().SetUp(RaftCluster::Name(4), false);
  ASSERT_TRUE(primary->ReplicateUser("one down").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return cluster.GetPrimary() != nullptr &&
                   cluster.GetPrimary()->raft().commit_seqno() >= target; },
      5000));

  // Kill the primary as well (2 of 5 down): still live.
  cluster.env().SetUp(cluster.GetPrimary()->id(), false);
  RaftTestNode* p2 = cluster.WaitForPrimary();
  ASSERT_NE(p2, nullptr);
  ASSERT_TRUE(p2->ReplicateUser("two down").ok());
  ASSERT_TRUE(p2->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return p2->raft().commit_seqno() >= p2->raft().last_seqno(); },
      5000));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(RaftCluster3, NoQuorumNoProgress) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(
      cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));
  // Kill both backups: no commit can advance.
  for (int i = 0; i < 3; ++i) {
    if (RaftCluster::Name(i) != primary->id()) {
      cluster.env().SetUp(RaftCluster::Name(i), false);
    }
  }
  uint64_t commit_before = primary->raft().commit_seqno();
  ASSERT_TRUE(primary->ReplicateUser("doomed").ok());
  Status sig_status = primary->ReplicateSignature();
  cluster.env().Step(150);
  EXPECT_EQ(primary->raft().commit_seqno(), commit_before);
  (void)sig_status;
  // And the primary eventually steps down (paper §4.2).
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return !primary->raft().IsPrimary(); }, 5000));
}

TEST(RaftCluster3, PartitionedPrimaryStepsDownAndRejoins) {
  RaftCluster cluster(3);
  RaftTestNode* old_primary = cluster.WaitForPrimary();
  ASSERT_NE(old_primary, nullptr);
  ASSERT_TRUE(old_primary->ReplicateSignature().ok());
  ASSERT_TRUE(
      cluster.WaitForCommitEverywhere(old_primary->raft().last_seqno()));

  cluster.env().Isolate(old_primary->id(), true);
  // It keeps appending into its isolated log.
  ASSERT_TRUE(old_primary->ReplicateUser("isolated-1").ok());
  ASSERT_TRUE(old_primary->ReplicateUser("isolated-2").ok());

  // The rest elect a new primary and make progress.
  RaftTestNode* new_primary = nullptr;
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        for (auto& [id, node] : cluster.nodes()) {
          if (id != old_primary->id() && node->raft().IsPrimary() &&
              node->raft().view() > old_primary->raft().view()) {
            new_primary = node.get();
            return true;
          }
        }
        return false;
      },
      5000));
  ASSERT_TRUE(new_primary->ReplicateUser("majority side").ok());
  ASSERT_TRUE(new_primary->ReplicateSignature().ok());

  // Heal: the old primary steps down and adopts the new log; its
  // uncommitted isolated entries are rolled back.
  cluster.env().Isolate(old_primary->id(), false);
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        return !old_primary->raft().IsPrimary() &&
               old_primary->raft().commit_seqno() ==
                   new_primary->raft().commit_seqno();
      },
      5000));
  EXPECT_GT(old_primary->rollbacks(), 0u);
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(RaftCluster3, TxStatusLifecycle) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  primary->set_signature_interval(1000);
  cluster.env().Step(50);

  uint64_t view = primary->raft().view();
  ASSERT_TRUE(primary->ReplicateUser("status-me").ok());
  uint64_t seqno = primary->raft().last_seqno();
  EXPECT_EQ(primary->raft().GetTxStatus(view, seqno), TxStatus::kPending);

  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().commit_seqno() >= seqno; }, 5000));
  EXPECT_EQ(primary->raft().GetTxStatus(view, seqno), TxStatus::kCommitted);

  // A transaction ID from a larger view at an earlier position is Invalid
  // once that later view exists; unknown future IDs stay Unknown.
  EXPECT_EQ(primary->raft().GetTxStatus(view, seqno + 1000),
            TxStatus::kUnknown);
  EXPECT_EQ(primary->raft().GetTxStatus(view - 1, seqno),
            TxStatus::kInvalid);
}

TEST(RaftCluster3, RolledBackTxBecomesInvalid) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(
      cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));

  // Isolate the primary; it appends an uncommitted suffix.
  cluster.env().Isolate(primary->id(), true);
  primary->set_signature_interval(1000);
  ASSERT_TRUE(primary->ReplicateUser("doomed").ok());
  uint64_t doomed_view = primary->raft().view();
  uint64_t doomed_seqno = primary->raft().last_seqno();

  // Majority side moves on.
  RaftTestNode* new_primary = nullptr;
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        for (auto& [id, node] : cluster.nodes()) {
          if (id != primary->id() && node->raft().IsPrimary() &&
              node->raft().view() > primary->raft().view()) {
            new_primary = node.get();
            return true;
          }
        }
        return false;
      },
      5000));
  ASSERT_TRUE(new_primary->ReplicateUser("winner").ok());
  ASSERT_TRUE(new_primary->ReplicateSignature().ok());

  uint64_t winner_target = new_primary->raft().last_seqno();
  cluster.env().Isolate(primary->id(), false);
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().commit_seqno() >= winner_target; },
      5000));
  // The doomed transaction ID is now Invalid on the old primary: a greater
  // view started at a smaller-or-equal seqno (paper §4.3).
  EXPECT_EQ(primary->raft().GetTxStatus(doomed_view, doomed_seqno),
            TxStatus::kInvalid);
  // And the winner's ID is Committed.
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(RaftCluster3, LaggingBackupCatchesUpViaBackoff) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  // Crash one backup, write a lot, restart it.
  NodeId lagger;
  for (int i = 0; i < 3; ++i) {
    if (RaftCluster::Name(i) != primary->id()) {
      lagger = RaftCluster::Name(i);
      break;
    }
  }
  cluster.env().SetUp(lagger, false);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(primary->ReplicateUser("bulk" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t target = primary->raft().last_seqno();
  cluster.env().SetUp(lagger, true);
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return cluster.node(lagger).raft().commit_seqno() >= target; },
      10000));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(RaftCluster5, MessageLossStillMakesProgress) {
  sim::EnvOptions opts;
  opts.drop_probability = 0.05;
  opts.max_latency_ms = 8;
  RaftCluster cluster(5, opts);
  RaftTestNode* primary = cluster.WaitForPrimary(20000);
  ASSERT_NE(primary, nullptr);
  for (int i = 0; i < 30; ++i) {
    primary = cluster.GetPrimary();
    if (primary != nullptr) {
      (void)primary->ReplicateUser("lossy" + std::to_string(i));
    }
    cluster.env().Step(20);
  }
  primary = cluster.WaitForPrimary(20000);
  ASSERT_NE(primary, nullptr);
  (void)primary->ReplicateSignature();
  uint64_t target = primary->raft().commit_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        RaftTestNode* p = cluster.GetPrimary();
        return p != nullptr && p->raft().commit_seqno() > target;
      },
      20000));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

// Property test: random crash/restart/partition schedules; all safety
// invariants must hold at every checkpoint.
class RaftChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RaftChaosTest, SafetyUnderRandomFaults) {
  sim::EnvOptions opts;
  opts.seed = GetParam();
  opts.drop_probability = 0.02;
  opts.max_latency_ms = 5;
  RaftCluster cluster(5, opts, /*seed=*/GetParam() * 7);
  crypto::Drbg chaos("chaos", GetParam());

  int txs = 0;
  for (int round = 0; round < 60; ++round) {
    // Random fault action.
    uint64_t action = chaos.Uniform(10);
    int victim = static_cast<int>(chaos.Uniform(5));
    NodeId victim_id = RaftCluster::Name(victim);
    if (action < 2) {
      cluster.env().SetUp(victim_id, !cluster.env().IsUp(victim_id));
    } else if (action < 3) {
      int other = static_cast<int>(chaos.Uniform(5));
      if (other != victim) {
        cluster.env().SetPartitioned(victim_id, RaftCluster::Name(other),
                                     chaos.Uniform(2) == 0);
      }
    } else if (action < 4) {
      // Heal everything occasionally.
      for (int i = 0; i < 5; ++i) {
        for (int j = i + 1; j < 5; ++j) {
          cluster.env().SetPartitioned(RaftCluster::Name(i),
                                       RaftCluster::Name(j), false);
        }
        cluster.env().SetUp(RaftCluster::Name(i), true);
      }
    }
    // Drive load through whoever is primary.
    RaftTestNode* primary = cluster.GetPrimary();
    if (primary != nullptr && cluster.env().IsUp(primary->id())) {
      for (int i = 0; i < 3; ++i) {
        if (primary->ReplicateUser("chaos" + std::to_string(txs)).ok()) {
          ++txs;
        }
      }
    }
    cluster.env().Step(30);
    ASSERT_TRUE(cluster.CommittedPrefixesAgree()) << "round " << round;
    ASSERT_TRUE(cluster.AtMostOnePrimaryPerView()) << "round " << round;
    ASSERT_TRUE(cluster.LogsMatch()) << "round " << round;
  }

  // Heal and confirm convergence/liveness.
  for (int i = 0; i < 5; ++i) {
    for (int j = i + 1; j < 5; ++j) {
      cluster.env().SetPartitioned(RaftCluster::Name(i),
                                   RaftCluster::Name(j), false);
    }
    cluster.env().SetUp(RaftCluster::Name(i), true);
  }
  // Elections may still churn right after healing, rolling back entries
  // replicated through a primary that is about to be deposed; retry until
  // a round survives.
  bool converged = false;
  for (int attempt = 0; attempt < 10 && !converged; ++attempt) {
    RaftTestNode* primary = cluster.WaitForPrimary(30000);
    ASSERT_NE(primary, nullptr);
    if (!primary->ReplicateUser("final").ok() ||
        !primary->ReplicateSignature().ok()) {
      cluster.env().Step(100);
      continue;
    }
    uint64_t target = primary->raft().last_seqno();
    converged = cluster.WaitForCommitEverywhere(target, 5000);
  }
  EXPECT_TRUE(converged);
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftChaosTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --------------------------------------------------- log prefix compaction

// The view recorded at `seqno` per a node's public view history (the test
// mirror of the private RaftNode::ViewAt).
uint64_t ViewAtSeqno(const RaftNode& raft, uint64_t seqno) {
  uint64_t view = 1;
  for (const auto& [v, start] : raft.view_history()) {
    if (start <= seqno) view = v;
  }
  return view;
}

TEST(RaftCompaction, CompactToDropsPrefixAndClampsToCommit) {
  sim::Environment env;
  RaftTestNode n0("n0", FastRaftConfig(), {"n0"}, true, &env);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(n0.ReplicateUser("tx" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(n0.ReplicateSignature().ok());
  uint64_t commit = n0.raft().commit_seqno();
  uint64_t last = n0.raft().last_seqno();
  ASSERT_EQ(commit, last);

  // Asking past the commit point clamps: nothing uncommitted is dropped.
  n0.raft().CompactTo(commit + 100);
  EXPECT_EQ(n0.raft().base_seqno(), commit);
  EXPECT_EQ(n0.raft().last_seqno(), last);
  EXPECT_EQ(n0.raft().commit_seqno(), commit);
  // The prefix is gone from memory; the tail (empty here) is addressable.
  EXPECT_EQ(n0.raft().GetLogEntry(commit), nullptr);

  // The node keeps operating normally on the re-based log.
  ASSERT_TRUE(n0.ReplicateUser("after-compact").ok());
  ASSERT_TRUE(n0.ReplicateSignature().ok());
  EXPECT_EQ(n0.raft().commit_seqno(), last + 2);
  ASSERT_NE(n0.raft().GetLogEntry(last + 1), nullptr);

  // Compacting twice (idempotent) and to the same point is a no-op.
  uint64_t base = n0.raft().commit_seqno();
  n0.raft().CompactTo(base);
  n0.raft().CompactTo(base);
  EXPECT_EQ(n0.raft().base_seqno(), base);
}

TEST(RaftCompaction, ClusterCommitsAcrossCompactedPrimaryLog) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(primary->ReplicateUser("tx" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(target));

  // Every peer acked, so the whole committed prefix is compactable.
  EXPECT_GE(primary->raft().MinPeerMatch(), target);
  primary->raft().CompactTo(primary->raft().MinPeerMatch());
  EXPECT_EQ(primary->raft().base_seqno(), target);
  EXPECT_TRUE(primary->raft().peers_needing_snapshot().empty());

  // Replication and commit continue from the re-based log.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(primary->ReplicateUser("post" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(RaftCompaction, MinPeerMatchHoldsBackCompactionForLaggard) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateUser("pre").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t acked_by_all = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(acked_by_all));

  // One backup goes dark; the remaining quorum keeps committing.
  NodeId lagger;
  for (int i = 0; i < 3; ++i) {
    if (RaftCluster::Name(i) != primary->id()) lagger = RaftCluster::Name(i);
  }
  cluster.env().SetUp(lagger, false);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary->ReplicateUser("quorum" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t committed = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().commit_seqno() >= committed; }, 5000));

  // The dark peer pins MinPeerMatch, so compaction keeps the entries it
  // still needs even though commit is far ahead.
  EXPECT_LE(primary->raft().MinPeerMatch(), acked_by_all);
  primary->raft().CompactTo(primary->raft().MinPeerMatch());
  EXPECT_LE(primary->raft().base_seqno(), acked_by_all);

  // Back up: the laggard catches up purely from the retained log tail.
  cluster.env().SetUp(lagger, true);
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(committed, 10000));
  EXPECT_TRUE(primary->raft().peers_needing_snapshot().empty());
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(RaftCompaction, LaggardBelowBaseNeedsSnapshotAndCatchesUpAfterInstall) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  NodeId lagger;
  for (int i = 0; i < 3; ++i) {
    if (RaftCluster::Name(i) != primary->id()) lagger = RaftCluster::Name(i);
  }
  cluster.env().SetUp(lagger, false);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(primary->ReplicateUser("deep" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t committed = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().commit_seqno() >= committed; }, 5000));

  // Compact past the laggard's match (what a primary would do after its
  // snapshot horizon moved): the log can no longer serve the laggard.
  primary->raft().CompactTo(committed);
  ASSERT_EQ(primary->raft().base_seqno(), committed);

  cluster.env().SetUp(lagger, true);
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        return primary->raft().peers_needing_snapshot().count(lagger) > 0;
      },
      5000));

  // The node layer ships a verified snapshot at the primary's base; the
  // laggard re-bases onto it.
  RaftNode& lraft = cluster.nodes().at(lagger)->raft();
  uint64_t snap_seqno = primary->raft().base_seqno();
  lraft.InstallSnapshot(snap_seqno,
                        ViewAtSeqno(primary->raft(), snap_seqno),
                        primary->raft().active_configs());
  EXPECT_EQ(lraft.base_seqno(), snap_seqno);
  EXPECT_EQ(lraft.commit_seqno(), snap_seqno);

  // A stale (already-covered) offer is ignored.
  lraft.InstallSnapshot(snap_seqno - 1, 1,
                        primary->raft().active_configs());
  EXPECT_EQ(lraft.base_seqno(), snap_seqno);

  // Replication resumes from the snapshot point and the flag clears.
  ASSERT_TRUE(primary->ReplicateUser("post-install").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(primary->raft().last_seqno(),
                                              10000));
  EXPECT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().peers_needing_snapshot().empty(); },
      5000));
  EXPECT_TRUE(cluster.CommittedPrefixesAgree());
}

}  // namespace
}  // namespace ccf::testing
