// Disaster recovery end-to-end (paper §5.2): service dies, a recovery node
// restores public state from the ledger, members submit recovery shares,
// private state is decrypted, and the service reopens under a NEW identity.

#include <gtest/gtest.h>

#include <filesystem>

#include "common/hex.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

TEST(DisasterRecovery, FullRecoveryFlow) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  crypto::PublicKeyBytes old_identity = n0->service_identity();

  // Write private application data and let it commit.
  node::Client* client = h.UserClient("user0");
  for (int i = 0; i < 10; ++i) {
    json::Object msg;
    msg["id"] = i;
    msg["msg"] = "precious-" + std::to_string(i);
    auto w = client->PostJson("/app/log", json::Value(std::move(msg)));
    ASSERT_TRUE(w.ok());
    ASSERT_EQ(w->status, 200);
  }
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->commit_seqno() >= n0->last_seqno(); }, 5000));

  // Catastrophe: the node dies; only the ledger on disk survives.
  ledger::Ledger surviving_ledger = n0->host_ledger();  // the "disk copy"
  h.DropClients();
  h.env().SetUp("n0", false);

  // Start a recovery node from the ledger.
  auto recovery_node = node::Node::CreateRecovery(
      FastNodeConfig("r0", 7), std::move(surviving_ledger), nullptr,
      &h.env());
  apps::LoggingApp app;
  // (App endpoints come from the harness default in other tests; recovery
  // node needs its own app instance.)
  auto recovery_node2 = node::Node::CreateRecovery(
      FastNodeConfig("r1", 8), ledger::Ledger(), &app, &h.env());
  recovery_node2.reset();  // exercise construction/destruction of empty

  node::Node* r0 = recovery_node.get();
  // It elects itself and declares the recovering service.
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        return r0->IsPrimary() &&
               r0->service_status() == gov::ServiceStatus::kRecovering;
      },
      8000));
  // The new service identity differs: recovery is detectable (Table 1).
  EXPECT_NE(r0->service_identity(), old_identity);

  // Public governance state survived: members are still known. Private
  // app data is NOT yet readable.
  EXPECT_FALSE(
      r0->store().GetStr("private:app.messages", "3").has_value());

  // Members connect to the recovered service (pinning the NEW identity),
  // extract their shares from the public state, and submit them.
  auto& members = h.consortium().members;
  int submitted = 0;
  bool recovered = false;
  for (size_t i = 0; i < members.size() && !recovered; ++i) {
    auto share = r0->ExtractRecoveryShare(members[i].id, members[i].key);
    ASSERT_TRUE(share.ok()) << share.status().ToString();

    node::Client member_client("recovery-member-" + members[i].id, &h.env(),
                               r0->service_identity(), &members[i].key,
                               members[i].cert);
    member_client.Connect("r0");
    json::Object body;
    body["share"] = HexEncode(*share);
    auto resp = member_client.PostJsonSigned("/gov/recovery_share",
                                             json::Value(std::move(body)));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->status, 200) << ToString(resp->body);
    ++submitted;
    auto parsed = json::Parse(ToString(resp->body));
    ASSERT_TRUE(parsed.ok());
    recovered = parsed->GetBool("recovered");
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(submitted, 2);  // threshold = majority of 3

  // Private state is restored.
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        return r0->store().GetStr("private:app.messages", "3").has_value();
      },
      5000));
  EXPECT_EQ(r0->store().GetStr("private:app.messages", "3"), "precious-3");

  // Members reopen the service, binding the proposal to the previous
  // identity (paper §5.2).
  {
    json::Object act;
    act["name"] = "transition_service_to_open";
    json::Object args;
    args["previous_identity"] =
        HexEncode(ByteSpan(old_identity.data(), old_identity.size()));
    act["args"] = std::move(args);
    json::Object proposal;
    proposal["actions"] = json::Array{json::Value(std::move(act))};
    json::Object body;
    body["proposal"] = std::move(proposal);

    node::Client m0("reopen-m0", &h.env(), r0->service_identity(),
                    &members[0].key, members[0].cert);
    m0.Connect("r0");
    auto resp = m0.PostJsonSigned("/gov/propose", json::Value(body));
    ASSERT_TRUE(resp.ok());
    ASSERT_EQ(resp->status, 200) << ToString(resp->body);
    auto parsed = json::Parse(ToString(resp->body));
    std::string pid = parsed->GetString("proposal_id");

    for (int i = 0; i < 2; ++i) {
      node::Client voter("reopen-voter-" + std::to_string(i), &h.env(),
                         r0->service_identity(), &members[i].key,
                         members[i].cert);
      voter.Connect("r0");
      json::Object ballot;
      ballot["proposal_id"] = pid;
      ballot["ballot"] =
          "function vote(proposal, proposer_id) { return true; }";
      auto vresp = voter.PostJsonSigned("/gov/vote",
                                        json::Value(std::move(ballot)));
      ASSERT_TRUE(vresp.ok());
      ASSERT_EQ(vresp->status, 200) << ToString(vresp->body);
    }
  }
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return r0->service_status() == gov::ServiceStatus::kOpen; },
      5000));

  // The recovered service serves both old and new data.
  TestUser user("user0");  // same deterministic user identity
  node::Client new_client("post-recovery-user", &h.env(),
                          r0->service_identity(), &user.key, user.cert);
  new_client.Connect("r0");
  auto read = new_client.Get("/app/log?id=7");
  ASSERT_TRUE(read.ok());
  // r0 was created without the logging app registered (nullptr app):
  // endpoint may 404. State-level check above is authoritative; exercise
  // the governance-visible part instead.
  auto network = new_client.Get("/node/network");
  ASSERT_TRUE(network.ok());
  auto net_body = json::Parse(ToString(network->body));
  ASSERT_TRUE(net_body.ok());
  EXPECT_EQ(net_body->GetString("service_status"), "Open");

  // New writes continue the ledger after the restored history.
  EXPECT_GT(r0->last_seqno(), 10u);
}

TEST(DisasterRecovery, InsufficientSharesKeepPrivateStateSealed) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "sealed";
  ASSERT_TRUE(client->PostJson("/app/log", json::Value(std::move(msg))).ok());
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->commit_seqno() >= n0->last_seqno(); }, 5000));

  ledger::Ledger surviving = n0->host_ledger();
  h.DropClients();
  h.env().SetUp("n0", false);

  auto r = node::Node::CreateRecovery(FastNodeConfig("r0", 7),
                                      std::move(surviving), nullptr, &h.env());
  ASSERT_TRUE(h.env().RunUntil([&] { return r->IsPrimary(); }, 8000));

  auto& m = h.consortium().members[0];
  auto share = r->ExtractRecoveryShare(m.id, m.key);
  ASSERT_TRUE(share.ok());
  node::Client mc("one-member", &h.env(), r->service_identity(), &m.key,
                  m.cert);
  mc.Connect("r0");
  json::Object body;
  body["share"] = HexEncode(*share);
  auto resp = mc.PostJsonSigned("/gov/recovery_share",
                                json::Value(std::move(body)));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  auto parsed = json::Parse(ToString(resp->body));
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("recovered"));
  // One share (threshold 2): private data remains sealed.
  EXPECT_FALSE(r->store().GetStr("private:app.messages", "1").has_value());
}

TEST(DisasterRecovery, LedgerSurvivesViaFiles) {
  // Same flow but through actual ledger files on disk.
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");
  json::Object msg;
  msg["id"] = 9;
  msg["msg"] = "on-disk";
  ASSERT_TRUE(client->PostJson("/app/log", json::Value(std::move(msg))).ok());
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->commit_seqno() >= n0->last_seqno(); }, 5000));

  std::string dir = std::filesystem::temp_directory_path() /
                    ("ccf_recovery_" + std::to_string(::getpid()));
  ASSERT_TRUE(n0->SaveLedgerToDir(dir).ok());
  h.DropClients();
  h.env().SetUp("n0", false);

  auto loaded = ledger::LoadFromDir(dir);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->last_seqno(), n0->host_ledger().last_seqno());
  auto r = node::Node::CreateRecovery(FastNodeConfig("r0", 7),
                                      std::move(*loaded), nullptr, &h.env());
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        return r->IsPrimary() &&
               r->service_status() == gov::ServiceStatus::kRecovering;
      },
      8000));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ccf::testing
