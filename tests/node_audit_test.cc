// Offline ledger audit tests (paper §6.2): tampering is detected; rollback
// to a valid signed prefix is — by design — not (that is the documented
// limitation the paper discusses).

#include <gtest/gtest.h>

#include <filesystem>

#include "common/hex.h"
#include "node/audit.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

// A service with some user traffic and one governance action.
std::pair<ledger::Ledger, crypto::PublicKeyBytes> BuildAuditedLedger() {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");
  for (int i = 0; i < 12; ++i) {
    json::Object msg;
    msg["id"] = i;
    msg["msg"] = "audit-" + std::to_string(i);
    auto w = client->PostJson("/app/log", json::Value(std::move(msg)));
    EXPECT_TRUE(w.ok() && w->status == 200);
  }
  json::Object args;
  args["code_id"] = "audited-code-v2";
  EXPECT_TRUE(h.RunProposal("add_node_code", json::Value(std::move(args))));
  h.env().RunUntil([&] { return n0->commit_seqno() >= n0->last_seqno(); },
                   5000);
  return {n0->host_ledger(), n0->service_identity()};
}

TEST(LedgerAudit, CleanLedgerVerifies) {
  auto [ledger, service] = BuildAuditedLedger();
  auto report = node::AuditLedger(ledger, service);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->entries, ledger.last_seqno());
  EXPECT_GT(report->signature_transactions, 0u);
  EXPECT_GT(report->verified_seqno, 0u);
  EXPECT_GT(report->governance_entries, 0u);
  EXPECT_EQ(report->service_identity_hex,
            HexEncode(ByteSpan(service.data(), service.size())));
}

TEST(LedgerAudit, TrustOnFirstUseReportsIdentity) {
  auto [ledger, service] = BuildAuditedLedger();
  auto report = node::AuditLedger(ledger, std::nullopt);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->service_identity_hex,
            HexEncode(ByteSpan(service.data(), service.size())));
}

TEST(LedgerAudit, WrongServiceIdentityRejected) {
  auto [ledger, service] = BuildAuditedLedger();
  crypto::KeyPair other = crypto::KeyPair::FromSeed(ToBytes("impostor"));
  EXPECT_FALSE(node::AuditLedger(ledger, other.public_key()).ok());
}

TEST(LedgerAudit, TamperedPublicWriteDetected) {
  auto [ledger, service] = BuildAuditedLedger();
  // Flip a byte in some mid-ledger entry's public write set: the next
  // signature transaction's root no longer matches.
  ledger::Ledger tampered;
  for (const ledger::Entry& e : ledger.entries()) {
    ledger::Entry copy = e;
    if (e.seqno == 3 && !copy.public_ws.empty()) {
      copy.public_ws[copy.public_ws.size() / 2] ^= 0x01;
    }
    ASSERT_TRUE(tampered.Append(std::move(copy)).ok());
  }
  auto report = node::AuditLedger(tampered, service);
  EXPECT_FALSE(report.ok());
}

TEST(LedgerAudit, TamperedPrivatePayloadDetected) {
  // Even though the auditor cannot DECRYPT private writes, the write-set
  // digest covers the sealed bytes, so flipping them breaks the tree.
  auto [ledger, service] = BuildAuditedLedger();
  ledger::Ledger tampered;
  bool flipped = false;
  for (const ledger::Entry& e : ledger.entries()) {
    ledger::Entry copy = e;
    if (!flipped && !copy.private_sealed.empty()) {
      copy.private_sealed[0] ^= 0x01;
      flipped = true;
    }
    ASSERT_TRUE(tampered.Append(std::move(copy)).ok());
  }
  ASSERT_TRUE(flipped);
  EXPECT_FALSE(node::AuditLedger(tampered, service).ok());
}

TEST(LedgerAudit, ForgedSignatureDetected) {
  auto [ledger, service] = BuildAuditedLedger();
  // Replace a signature entry's signer signature with garbage bytes of
  // the right length (re-serializing the SignedRoot with a bad sig).
  ledger::Ledger tampered;
  bool forged = false;
  for (const ledger::Entry& e : ledger.entries()) {
    ledger::Entry copy = e;
    if (!forged && e.type == ledger::EntryType::kSignature) {
      // The signature bytes live inside the public write set hex; flip a
      // byte near the end of the payload.
      copy.public_ws[copy.public_ws.size() - 3] ^= 0x01;
      forged = true;
    }
    ASSERT_TRUE(tampered.Append(std::move(copy)).ok());
  }
  ASSERT_TRUE(forged);
  EXPECT_FALSE(node::AuditLedger(tampered, service).ok());
}

TEST(LedgerAudit, RollbackToSignedPrefixIsUndetectable) {
  // Paper §6.2: "the ledger could be rolled back to a previously valid
  // prefix" — the audit succeeds on a truncated ledger; only the entry
  // count reveals it. This test documents the limitation.
  auto [ledger, service] = BuildAuditedLedger();
  auto full = node::AuditLedger(ledger, service);
  ASSERT_TRUE(full.ok());

  // Truncate to the first signature transaction boundary.
  uint64_t cut = 0;
  for (const ledger::Entry& e : ledger.entries()) {
    if (e.type == ledger::EntryType::kSignature) {
      cut = e.seqno;
      break;
    }
  }
  ASSERT_GT(cut, 0u);
  ledger::Ledger rolled_back = ledger;
  rolled_back.Truncate(cut);
  auto report = node::AuditLedger(rolled_back, service);
  ASSERT_TRUE(report.ok());
  EXPECT_LT(report->entries, full->entries);
}

TEST(LedgerAudit, BatchedReplayMatchesSerial) {
  // The batched audit path (MerkleTree::AppendBatch + crypto::VerifyBatch)
  // must accept exactly what the serial baseline accepts and produce the
  // same report, only faster.
  auto [ledger, service] = BuildAuditedLedger();
  node::AuditOptions serial;
  serial.batch = false;
  node::AuditOptions batched;
  batched.batch = true;
  batched.verify_batch_width = 4;  // force several flushes on a small ledger

  auto a = node::AuditLedger(ledger, service, serial);
  auto b = node::AuditLedger(ledger, service, batched);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->entries, b->entries);
  EXPECT_EQ(a->signature_transactions, b->signature_transactions);
  EXPECT_EQ(a->verified_seqno, b->verified_seqno);
  EXPECT_EQ(a->governance_entries, b->governance_entries);
  EXPECT_EQ(a->service_identity_hex, b->service_identity_hex);
  // The batch kernels actually engaged (and only in batch mode).
  EXPECT_EQ(a->batched_verifications, 0u);
  EXPECT_GT(b->batched_verifications, 0u);
}

TEST(LedgerAudit, BatchedReplayDetectsTampering) {
  // Forged signatures must not slip through the batched path: the
  // VerifyBatch failure falls back to per-signature checks and the audit
  // still rejects.
  auto [ledger, service] = BuildAuditedLedger();
  ledger::Ledger tampered;
  bool forged = false;
  for (const ledger::Entry& e : ledger.entries()) {
    ledger::Entry copy = e;
    if (!forged && e.type == ledger::EntryType::kSignature) {
      copy.public_ws[copy.public_ws.size() - 3] ^= 0x01;
      forged = true;
    }
    ASSERT_TRUE(tampered.Append(std::move(copy)).ok());
  }
  ASSERT_TRUE(forged);
  node::AuditOptions batched;
  batched.batch = true;
  batched.verify_batch_width = 4;
  EXPECT_FALSE(node::AuditLedger(tampered, service, batched).ok());
}

TEST(LedgerAudit, SurvivesSaveLoadRoundTrip) {
  auto [ledger, service] = BuildAuditedLedger();
  std::string dir = std::filesystem::temp_directory_path() /
                    ("ccf_audit_" + std::to_string(::getpid()));
  ASSERT_TRUE(ledger::SaveToDir(ledger, dir).ok());
  auto loaded = ledger::LoadFromDir(dir);
  ASSERT_TRUE(loaded.ok());
  auto report = node::AuditLedger(*loaded, service);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace ccf::testing
