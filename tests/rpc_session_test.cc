#include <gtest/gtest.h>

#include "rpc/session.h"

namespace ccf::rpc {
namespace {

struct Fixture {
  crypto::KeyPair service = crypto::KeyPair::FromSeed(ToBytes("service"));
  crypto::KeyPair node = crypto::KeyPair::FromSeed(ToBytes("node"));
  crypto::Certificate node_cert = crypto::IssueCertificate(
      "node0", "node", node.public_key(), service, "service");
  crypto::KeyPair user = crypto::KeyPair::FromSeed(ToBytes("user"));
  crypto::Certificate user_cert = crypto::IssueCertificate(
      "user0", "user", user.public_key(), user, "");
  crypto::Drbg server_drbg{"server", 0};
  crypto::Drbg client_drbg{"client", 0};
};

TEST(Stls, AnonymousHandshakeAndData) {
  Fixture f;
  ServerSession server(&f.node, f.node_cert, &f.server_drbg);
  ClientSession client(f.service.public_key(), nullptr, std::nullopt,
                       &f.client_drbg);

  Bytes hello = client.Start();
  auto server_out = server.OnRecord(hello);
  ASSERT_TRUE(server_out.ok()) << server_out.status().ToString();
  ASSERT_FALSE(server_out->to_send.empty());
  EXPECT_FALSE(server.peer_cert().has_value());

  auto client_out = client.OnRecord(server_out->to_send);
  ASSERT_TRUE(client_out.ok()) << client_out.status().ToString();
  ASSERT_TRUE(client.established());
  ASSERT_TRUE(client.server_cert().has_value());
  EXPECT_EQ(client.server_cert()->subject, "node0");

  // Client -> server application data.
  auto record = client.Seal(ToBytes("GET /app HTTP"));
  ASSERT_TRUE(record.ok());
  auto received = server.OnRecord(*record);
  ASSERT_TRUE(received.ok());
  ASSERT_EQ(received->app_data.size(), 1u);
  EXPECT_EQ(ToString(received->app_data[0]), "GET /app HTTP");

  // Server -> client.
  auto reply = server.Seal(ToBytes("200 OK"));
  ASSERT_TRUE(reply.ok());
  auto client_received = client.OnRecord(*reply);
  ASSERT_TRUE(client_received.ok());
  ASSERT_EQ(client_received->app_data.size(), 1u);
  EXPECT_EQ(ToString(client_received->app_data[0]), "200 OK");
}

TEST(Stls, MutualAuthPresentsClientCert) {
  Fixture f;
  ServerSession server(&f.node, f.node_cert, &f.server_drbg);
  ClientSession client(f.service.public_key(), &f.user, f.user_cert,
                       &f.client_drbg);
  auto server_out = server.OnRecord(client.Start());
  ASSERT_TRUE(server_out.ok());
  ASSERT_TRUE(server.peer_cert().has_value());
  EXPECT_EQ(server.peer_cert()->subject, "user0");
  EXPECT_EQ(server.peer_cert()->Fingerprint(), f.user_cert.Fingerprint());
}

TEST(Stls, ClientWithoutKeyPossessionRejected) {
  Fixture f;
  // Craft a hello claiming the user cert but signing with the wrong key.
  crypto::KeyPair wrong = crypto::KeyPair::FromSeed(ToBytes("wrong"));
  ClientSession bad_client(f.service.public_key(), &wrong, f.user_cert,
                           &f.client_drbg);
  ServerSession server(&f.node, f.node_cert, &f.server_drbg);
  auto out = server.OnRecord(bad_client.Start());
  EXPECT_FALSE(out.ok());
}

TEST(Stls, ClientRejectsWrongService) {
  Fixture f;
  crypto::KeyPair other_service =
      crypto::KeyPair::FromSeed(ToBytes("other-service"));
  ServerSession server(&f.node, f.node_cert, &f.server_drbg);
  // Client pins a different service identity: handshake must fail on the
  // cert chain check (detects e.g. a post-recovery service, Table 1).
  ClientSession client(other_service.public_key(), nullptr, std::nullopt,
                       &f.client_drbg);
  auto server_out = server.OnRecord(client.Start());
  ASSERT_TRUE(server_out.ok());
  auto client_out = client.OnRecord(server_out->to_send);
  EXPECT_FALSE(client_out.ok());
}

TEST(Stls, ClientRejectsNonNodeCert) {
  Fixture f;
  // Server presents a user cert instead of a node cert.
  crypto::Certificate not_node = crypto::IssueCertificate(
      "node0", "user", f.node.public_key(), f.service, "service");
  ServerSession server(&f.node, not_node, &f.server_drbg);
  ClientSession client(f.service.public_key(), nullptr, std::nullopt,
                       &f.client_drbg);
  auto server_out = server.OnRecord(client.Start());
  ASSERT_TRUE(server_out.ok());
  EXPECT_FALSE(client.OnRecord(server_out->to_send).ok());
}

TEST(Stls, TamperedRecordRejected) {
  Fixture f;
  ServerSession server(&f.node, f.node_cert, &f.server_drbg);
  ClientSession client(f.service.public_key(), nullptr, std::nullopt,
                       &f.client_drbg);
  auto server_out = server.OnRecord(client.Start());
  ASSERT_TRUE(server_out.ok());
  ASSERT_TRUE(client.OnRecord(server_out->to_send).ok());

  auto record = client.Seal(ToBytes("secret request"));
  ASSERT_TRUE(record.ok());
  Bytes bad = *record;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(server.OnRecord(bad).ok());
}

TEST(Stls, ReplayedRecordRejected) {
  Fixture f;
  ServerSession server(&f.node, f.node_cert, &f.server_drbg);
  ClientSession client(f.service.public_key(), nullptr, std::nullopt,
                       &f.client_drbg);
  auto server_out = server.OnRecord(client.Start());
  ASSERT_TRUE(server_out.ok());
  ASSERT_TRUE(client.OnRecord(server_out->to_send).ok());

  auto record = client.Seal(ToBytes("pay 100"));
  ASSERT_TRUE(record.ok());
  ASSERT_TRUE(server.OnRecord(*record).ok());
  // Replaying the identical record fails: the receive counter advanced.
  EXPECT_FALSE(server.OnRecord(*record).ok());
}

TEST(Stls, DataBeforeHandshakeRejected) {
  Fixture f;
  ServerSession server(&f.node, f.node_cert, &f.server_drbg);
  Bytes fake = MakeRecord(RecordType::kData, ToBytes("xxxx"));
  EXPECT_FALSE(server.OnRecord(fake).ok());
  EXPECT_FALSE(server.Seal(ToBytes("x")).ok());
}

TEST(Stls, SessionsHaveIndependentKeys) {
  Fixture f;
  ServerSession s1(&f.node, f.node_cert, &f.server_drbg);
  ServerSession s2(&f.node, f.node_cert, &f.server_drbg);
  ClientSession c1(f.service.public_key(), nullptr, std::nullopt,
                   &f.client_drbg);
  ClientSession c2(f.service.public_key(), nullptr, std::nullopt,
                   &f.client_drbg);
  auto o1 = s1.OnRecord(c1.Start());
  auto o2 = s2.OnRecord(c2.Start());
  ASSERT_TRUE(o1.ok() && o2.ok());
  ASSERT_TRUE(c1.OnRecord(o1->to_send).ok());
  ASSERT_TRUE(c2.OnRecord(o2->to_send).ok());
  // A record sealed for session 1 cannot be opened by session 2.
  auto record = c1.Seal(ToBytes("for session 1"));
  ASSERT_TRUE(record.ok());
  EXPECT_FALSE(s2.OnRecord(*record).ok());
}

TEST(Stls, ParseRecordValidation) {
  EXPECT_FALSE(ParseRecord(Bytes{}).ok());
  EXPECT_FALSE(ParseRecord(Bytes{99}).ok());
  auto r = ParseRecord(MakeRecord(RecordType::kAlert, ToBytes("x")));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->first, RecordType::kAlert);
}

}  // namespace
}  // namespace ccf::rpc
