// Seed-sweep chaos tests for the consensus layer (paper §4, Fig. 9).
//
// Each seed derives a full fault schedule — per-link drop/duplication/
// reordering/extra-delay policies, symmetric and asymmetric partitions,
// crashes with scheduled restarts, scheduled heals — and drives a 5-node
// cluster through it while the sim::InvariantChecker observes every node
// after every simulated millisecond. On failure the test prints the seed
// and the complete schedule, and the run is bit-for-bit replayable from
// the seed (see ChaosDeterminism below).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "tests/raft_harness.h"

namespace ccf::testing {
namespace {

constexpr int kNodes = 5;
constexpr int kRounds = 30;
constexpr uint64_t kRoundMs = 20;

struct ChaosOutcome {
  std::string failure;   // empty = all invariants held and the run converged
  std::string schedule;  // human-readable, replayable fault schedule
  std::string trace;     // per-round state fingerprint (determinism checks)
};

void HealEverything(RaftCluster* cluster) {
  for (int i = 0; i < kNodes; ++i) {
    for (int j = 0; j < kNodes; ++j) {
      if (i == j) continue;
      cluster->env().SetBlockedOneWay(RaftCluster::Name(i),
                                      RaftCluster::Name(j), false);
    }
    for (int j = i + 1; j < kNodes; ++j) {
      cluster->env().SetPartitioned(RaftCluster::Name(i),
                                    RaftCluster::Name(j), false);
    }
    cluster->env().SetUp(RaftCluster::Name(i), true);
  }
  cluster->env().ClearLinkFaults();
}

ChaosOutcome RunConsensusChaos(uint64_t seed) {
  ChaosOutcome out;
  std::ostringstream schedule;
  std::ostringstream trace;

  sim::EnvOptions opts;
  opts.seed = seed;
  opts.max_latency_ms = 5;
  RaftCluster cluster(kNodes, opts, /*seed=*/seed * 7 + 1);
  sim::InvariantChecker& checker = cluster.EnableInvariantChecker();

  crypto::Drbg chaos("consensus-chaos", seed);

  // Per-seed link fault policy, applied to every directed node pair.
  sim::LinkFaults faults;
  faults.drop = static_cast<double>(1 + chaos.Uniform(6)) / 100.0;
  faults.duplicate = static_cast<double>(chaos.Uniform(8)) / 100.0;
  faults.reorder = static_cast<double>(chaos.Uniform(8)) / 100.0;
  faults.extra_delay_max_ms = chaos.Uniform(4);
  std::vector<std::string> ids;
  for (int i = 0; i < kNodes; ++i) ids.push_back(RaftCluster::Name(i));
  cluster.env().SetFaultsAmong(ids, faults);
  schedule << "seed " << seed << " link faults: drop=" << faults.drop
           << " dup=" << faults.duplicate << " reorder=" << faults.reorder
           << " delay<=" << faults.extra_delay_max_ms << "ms\n";

  int txs = 0;
  for (int round = 0; round < kRounds; ++round) {
    uint64_t now = cluster.env().now_ms();
    uint64_t action = chaos.Uniform(12);
    int victim = static_cast<int>(chaos.Uniform(kNodes));
    NodeId victim_id = RaftCluster::Name(victim);
    if (action < 2) {
      bool up = !cluster.env().IsUp(victim_id);
      cluster.env().SetUp(victim_id, up);
      schedule << "t=" << now << " " << (up ? "restart " : "crash ")
               << victim_id << "\n";
    } else if (action < 4) {
      int other = static_cast<int>(chaos.Uniform(kNodes));
      bool on = chaos.Uniform(2) == 0;
      if (other != victim) {
        cluster.env().SetPartitioned(victim_id, RaftCluster::Name(other), on);
        schedule << "t=" << now << " partition " << victim_id << "<->"
                 << RaftCluster::Name(other) << (on ? " on" : " off") << "\n";
      }
    } else if (action < 6) {
      int other = static_cast<int>(chaos.Uniform(kNodes));
      bool on = chaos.Uniform(2) == 0;
      if (other != victim) {
        cluster.env().SetBlockedOneWay(victim_id, RaftCluster::Name(other),
                                       on);
        schedule << "t=" << now << " one-way block " << victim_id << "->"
                 << RaftCluster::Name(other) << (on ? " on" : " off") << "\n";
      }
    } else if (action < 7) {
      // Crash with a scheduled restart (exercises Environment::At).
      uint64_t restart_at = now + 20 + chaos.Uniform(80);
      cluster.env().SetUp(victim_id, false);
      cluster.env().At(restart_at, [&cluster, victim_id] {
        cluster.env().SetUp(victim_id, true);
      });
      schedule << "t=" << now << " crash " << victim_id << " until t="
               << restart_at << "\n";
    } else if (action < 8) {
      // Scheduled full heal of partitions and crashes (faults stay).
      uint64_t heal_at = now + 10 + chaos.Uniform(60);
      cluster.env().At(heal_at, [&cluster] {
        for (int i = 0; i < kNodes; ++i) {
          for (int j = 0; j < kNodes; ++j) {
            if (i == j) continue;
            cluster.env().SetBlockedOneWay(RaftCluster::Name(i),
                                           RaftCluster::Name(j), false);
          }
          for (int j = i + 1; j < kNodes; ++j) {
            cluster.env().SetPartitioned(RaftCluster::Name(i),
                                         RaftCluster::Name(j), false);
          }
          cluster.env().SetUp(RaftCluster::Name(i), true);
        }
      });
      schedule << "t=" << now << " heal scheduled at t=" << heal_at << "\n";
    }

    // Drive load through whoever is primary.
    RaftTestNode* primary = cluster.GetPrimary();
    if (primary != nullptr && cluster.env().IsUp(primary->id())) {
      for (int i = 0; i < 3; ++i) {
        if (primary->ReplicateUser("chaos" + std::to_string(txs)).ok()) {
          ++txs;
        }
      }
    }
    cluster.env().Step(kRoundMs);

    trace << "r" << round << " t=" << cluster.env().now_ms()
          << " sent=" << cluster.env().messages_sent()
          << " dropped=" << cluster.env().messages_dropped()
          << " dup=" << cluster.env().messages_duplicated()
          << " reord=" << cluster.env().messages_reordered();
    for (int i = 0; i < kNodes; ++i) {
      const RaftNode& r = cluster.node(i).raft();
      trace << " n" << i << "=(" << r.view() << "," << r.last_seqno() << ","
            << r.commit_seqno() << ")";
    }
    trace << "\n";

    if (!checker.ok()) break;
  }

  out.schedule = schedule.str();
  out.trace = trace.str();
  if (!checker.ok()) {
    out.failure = "invariant violation:\n" + checker.Report();
    return out;
  }

  // Heal and require convergence: a stable primary commits a fresh entry
  // everywhere, and all nodes quiesce onto identical logs.
  HealEverything(&cluster);
  bool converged = false;
  for (int attempt = 0; attempt < 10 && !converged; ++attempt) {
    RaftTestNode* primary = cluster.WaitForPrimary(30000);
    if (primary == nullptr) continue;
    if (!primary->ReplicateUser("final").ok() ||
        !primary->ReplicateSignature().ok()) {
      cluster.env().Step(100);
      continue;
    }
    uint64_t target = primary->raft().last_seqno();
    converged = cluster.WaitForCommitEverywhere(target, 5000) &&
                cluster.env().RunUntil(
                    [&] {
                      for (int i = 0; i < kNodes; ++i) {
                        const RaftNode& r = cluster.node(i).raft();
                        if (r.last_seqno() != target ||
                            r.commit_seqno() != target) {
                          return false;
                        }
                      }
                      return true;
                    },
                    3000);
  }
  if (!converged) {
    out.failure = "cluster failed to converge after heal";
    return out;
  }

  std::string why;
  if (!checker.CheckConverged([](const std::string&) { return true; }, &why)) {
    out.failure = "state convergence violated: " + why;
    return out;
  }
  if (!checker.ok()) {
    out.failure = "invariant violation during convergence:\n" +
                  checker.Report();
    return out;
  }
  if (!cluster.AllInvariantsHold()) {
    out.failure = "harness-level invariant violation";
  }
  return out;
}

// 20 batches x 10 seeds = 200 fault schedules.
class ConsensusChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConsensusChaosTest, InvariantsHoldAcrossSeedBatch) {
  for (uint64_t i = 0; i < 10; ++i) {
    uint64_t seed = GetParam() * 10 + i;
    ChaosOutcome out = RunConsensusChaos(seed);
    ASSERT_TRUE(out.failure.empty())
        << "seed " << seed << ": " << out.failure
        << "\nreplayable fault schedule:\n"
        << out.schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBatches, ConsensusChaosTest,
                         ::testing::Range<uint64_t>(0, 20));

// Same seed => identical fault schedule, message counts, and per-round
// node states. This is what makes every counterexample replayable.
TEST(ConsensusChaosDeterminism, SameSeedSameTrace) {
  ChaosOutcome a = RunConsensusChaos(42);
  ChaosOutcome b = RunConsensusChaos(42);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.failure, b.failure);
}

TEST(ConsensusChaosDeterminism, DifferentSeedsDiverge) {
  ChaosOutcome a = RunConsensusChaos(1);
  ChaosOutcome b = RunConsensusChaos(2);
  EXPECT_NE(a.trace, b.trace);
}

}  // namespace
}  // namespace ccf::testing
