// Application registry, schema validation, error envelope, 405 handling
// and generated OpenAPI (DESIGN.md §14). These drive the full
// node/session/HTTP stack in the simulator: requests go through real
// dispatch, so a schema rejection observed here really did happen before
// any KV transaction was opened.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "apps/app.h"
#include "apps/banking.h"
#include "apps/smallbank.h"
#include "json/json.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

json::Value Obj(std::initializer_list<std::pair<const char*, json::Value>> kv) {
  json::Object o;
  for (const auto& [k, v] : kv) o[k] = v;
  return json::Value(std::move(o));
}

// Parses an error response and asserts the standard envelope
// {"error": {"code": ..., "message": ...}}, returning the code.
std::string ErrorCodeOf(const http::Response& resp) {
  auto body = json::Parse(ToString(resp.body));
  if (!body.ok()) return "<unparseable: " + ToString(resp.body) + ">";
  const json::Value* err = body->Get("error");
  if (err == nullptr || !err->is_object()) {
    return "<no error object: " + ToString(resp.body) + ">";
  }
  if (err->GetString("message").empty()) return "<empty message>";
  return err->GetString("code");
}

// ------------------------------------------------------ schema validation

TEST(SchemaGate, MalformedJsonRejected400WithoutTx) {
  ServiceHarness h;
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  node::Client* c = h.UserClient("alice");
  uint64_t seqno_before = n0->last_seqno();

  http::Request r;
  r.method = "POST";
  r.path = "/app/log";
  r.body = ToBytes("{\"id\": 1, \"msg\": ");  // truncated JSON
  r.headers["content-type"] = "application/json";
  auto resp = c->Call(std::move(r));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 400);
  EXPECT_EQ(ErrorCodeOf(*resp), "InvalidRequestBody");
  // Rejected before any transaction was opened: nothing was appended.
  EXPECT_EQ(n0->last_seqno(), seqno_before);
}

TEST(SchemaGate, MissingFieldAndWrongTypeRejected400WithoutTx) {
  ServiceHarness h;
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  node::Client* c = h.UserClient("alice");
  uint64_t seqno_before = n0->last_seqno();

  // Missing required field.
  auto missing = c->PostJson("/app/log", Obj({{"id", json::Value(1)}}));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 400);
  EXPECT_EQ(ErrorCodeOf(*missing), "InvalidInput");

  // Wrong type for a declared field.
  auto wrong_type = c->PostJson(
      "/app/log", Obj({{"id", json::Value("one")},
                       {"msg", json::Value("hello")}}));
  ASSERT_TRUE(wrong_type.ok());
  EXPECT_EQ(wrong_type->status, 400);
  EXPECT_EQ(ErrorCodeOf(*wrong_type), "InvalidInput");
  auto body = json::Parse(ToString(wrong_type->body));
  ASSERT_TRUE(body.ok());
  // The message pinpoints the offending field.
  EXPECT_NE(body->Get("error")->GetString("message").find("$.id"),
            std::string::npos);

  // Unknown extra field (schemas close their objects).
  auto extra = c->PostJson(
      "/app/log", Obj({{"id", json::Value(1)},
                       {"msg", json::Value("hi")},
                       {"mgs", json::Value("typo")}}));
  ASSERT_TRUE(extra.ok());
  EXPECT_EQ(extra->status, 400);
  EXPECT_EQ(ErrorCodeOf(*extra), "InvalidInput");

  // None of the rejects opened a transaction.
  EXPECT_EQ(n0->last_seqno(), seqno_before);

  // A conforming body still lands.
  auto good = c->PostJson("/app/log", Obj({{"id", json::Value(1)},
                                           {"msg", json::Value("hello")}}));
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good->status, 200);
  EXPECT_GT(n0->last_seqno(), seqno_before);
}

TEST(SchemaGate, RejectionPreservesPipelinedResponseOrder) {
  // A schema rejection answered directly from dispatch must not overtake
  // responses for requests queued in the exec batch ahead of it.
  ServiceHarness h;
  h.SetConfigTweak([](node::NodeConfig* cfg) { cfg->exec_threads = 2; });
  h.AddUser("alice");
  h.StartGenesis();
  node::Client* c = h.UserClient("alice");

  std::vector<int> statuses;
  std::vector<std::string> markers;
  for (int i = 0; i < 9; ++i) {
    http::Request r;
    r.method = "POST";
    r.path = "/app/log";
    if (i % 3 == 2) {
      r.body = ToBytes("{\"id\": \"bad\", \"msg\": \"x\"}");
    } else {
      r.body = ToBytes("{\"id\": " + std::to_string(i) +
                       ", \"msg\": \"m" + std::to_string(i) + "\"}");
    }
    r.headers["content-type"] = "application/json";
    c->SendRequest(std::move(r), [&, i](Result<http::Response> resp) {
      ASSERT_TRUE(resp.ok());
      statuses.push_back(resp->status);
      markers.push_back(std::to_string(i));
    });
  }
  ASSERT_TRUE(h.env().RunUntil([&] { return statuses.size() == 9; }, 5000));
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(markers[i], std::to_string(i)) << "responses out of order";
    EXPECT_EQ(statuses[i], i % 3 == 2 ? 400 : 200) << "request " << i;
  }
}

// ----------------------------------------------------------- 405 handling

TEST(MethodNotAllowed, KnownPathWrongMethodGets405WithAllow) {
  ServiceHarness h;
  h.AddUser("alice");
  h.StartGenesis();
  node::Client* c = h.UserClient("alice");

  // /app/log supports GET and POST; DELETE is not registered.
  http::Request r;
  r.method = "DELETE";
  r.path = "/app/log";
  auto resp = c->Call(std::move(r));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 405);
  EXPECT_EQ(ErrorCodeOf(*resp), "MethodNotAllowed");
  std::string allow = resp->GetHeader("allow");
  EXPECT_NE(allow.find("GET"), std::string::npos) << allow;
  EXPECT_NE(allow.find("POST"), std::string::npos) << allow;

  // An unknown path is still a plain 404.
  auto missing = c->Get("/app/definitely-not-here");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(ErrorCodeOf(*missing), "ResourceNotFound");
  EXPECT_TRUE(missing->GetHeader("allow").empty());
}

// Installs the scripted (CCL) logging app via governance, as members
// would (paper Table 4's set_js_app action).
void InstallScriptedApp(ServiceHarness* h) {
  json::Object args;
  args["module"] = apps::LoggingAppModule();
  auto endpoints = json::Parse(apps::LoggingAppEndpointsJson());
  ASSERT_TRUE(endpoints.ok());
  args["endpoints"] = *endpoints;
  ASSERT_TRUE(h->RunProposal("set_js_app", json::Value(std::move(args))));
}

TEST(MethodNotAllowed, ScriptedEndpointMethodsCountTowardAllow) {
  ServiceHarness h;
  h.AddUser("alice");
  h.StartGenesis();
  InstallScriptedApp(&h);
  node::Client* c = h.UserClient("alice");

  // /app/jslog is installed by governance as a scripted POST endpoint.
  http::Request r;
  r.method = "GET";
  r.path = "/app/jslog";
  auto resp = c->Call(std::move(r));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 405);
  EXPECT_NE(resp->GetHeader("allow").find("POST"), std::string::npos)
      << resp->GetHeader("allow");
}

// --------------------------------------------------------- error envelope

TEST(ErrorEnvelope, NativeAndScriptedErrorsShareTheShape) {
  ServiceHarness h;
  h.AddUser("alice");
  h.StartGenesis();
  InstallScriptedApp(&h);
  node::Client* c = h.UserClient("alice");

  // Native handler error: GET of a message that does not exist.
  auto native = c->Get("/app/log?id=999");
  ASSERT_TRUE(native.ok());
  EXPECT_EQ(native->status, 404);
  EXPECT_EQ(ErrorCodeOf(*native), "ResourceNotFound");

  // Scripted handler error (CCL /app/jslog_read of a missing id) is
  // rewrapped into the same envelope.
  auto scripted = c->PostJson("/app/jslog_read",
                              Obj({{"id", json::Value(31337)}}));
  ASSERT_TRUE(scripted.ok());
  EXPECT_EQ(scripted->status, 404);
  EXPECT_EQ(ErrorCodeOf(*scripted), "ResourceNotFound");

  // Unauthenticated request.
  node::Client* anon = h.AnonymousClient();
  auto unauthed = anon->PostJson("/app/log", Obj({{"id", json::Value(1)},
                                                  {"msg", json::Value("x")}}));
  ASSERT_TRUE(unauthed.ok());
  EXPECT_EQ(unauthed->status, 401);
  EXPECT_EQ(ErrorCodeOf(*unauthed), "Unauthorized");
}

// ---------------------------------------------------------------- OpenAPI

class OpenApiServedTest : public ::testing::Test {
 protected:
  // One node serving logging + banking + SmallBank through the registry.
  json::Value FetchApi(ServiceHarness* h) {
    node::Client* c = h->AnonymousClient();
    auto resp = c->Get("/app/api");
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    EXPECT_EQ(resp->GetHeader("content-type"), "application/json");
    auto parsed = json::Parse(ToString(resp->body));
    EXPECT_TRUE(parsed.ok()) << ToString(resp->body).substr(0, 200);
    return parsed.ok() ? *parsed : json::Value();
  }
};

TEST_F(OpenApiServedTest, CoversEveryRegisteredAppEndpoint) {
  apps::LoggingApp logging;
  apps::BankingApp banking;
  apps::SmallBankApp smallbank;
  apps::AppRegistry registry;
  registry.Add(&logging).Add(&banking).Add(&smallbank);

  ServiceHarness h;
  h.AddUser("alice");
  ASSERT_NE(h.StartGenesis(true, &registry), nullptr);
  json::Value doc = FetchApi(&h);

  EXPECT_EQ(doc.GetString("openapi"), "3.0.3");
  const json::Value* info = doc.Get("info");
  ASSERT_NE(info, nullptr);
  EXPECT_FALSE(info->GetString("title").empty());
  const json::Value* paths = doc.Get("paths");
  ASSERT_NE(paths, nullptr);
  ASSERT_TRUE(paths->is_object());

  // Every native /app endpoint from all three apps must be present.
  const struct { const char* method; const char* path; } expected[] = {
      {"post", "/app/log"},          {"get", "/app/log"},
      {"post", "/app/log_public"},   {"get", "/app/log_public"},
      {"post", "/app/rmw"},          {"get", "/app/count"},
      {"get", "/app/hashread"},      {"get", "/app/log/historical"},
      {"get", "/app/log/historical/range"},
      {"post", "/app/open_account"}, {"post", "/app/credit"},
      {"post", "/app/debit"},        {"post", "/app/transfer"},
      {"post", "/app/apply_interest"}, {"get", "/app/balance"},
      {"get", "/app/audit"},         {"get", "/app/statement"},
      {"post", "/app/sb/create_accounts"},
      {"post", "/app/sb/transact_savings"},
      {"post", "/app/sb/deposit_checking"},
      {"post", "/app/sb/send_payment"},
      {"post", "/app/sb/write_check"},
      {"post", "/app/sb/amalgamate"},
      {"get", "/app/sb/balance"},
  };
  for (const auto& e : expected) {
    const json::Value* path_item = paths->Get(e.path);
    ASSERT_NE(path_item, nullptr) << e.path << " missing from OpenAPI";
    EXPECT_NE(path_item->Get(e.method), nullptr)
        << e.method << " " << e.path << " missing from OpenAPI";
  }

  // Schema'd write endpoints document their request bodies.
  const json::Value* log_post = paths->Get("/app/log")->Get("post");
  ASSERT_NE(log_post, nullptr);
  const json::Value* req_body = log_post->Get("requestBody");
  ASSERT_NE(req_body, nullptr);
  const json::Value* schema =
      req_body->Get("content")->Get("application/json")->Get("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->GetString("type"), "object");
  ASSERT_NE(schema->Get("properties"), nullptr);
  EXPECT_NE(schema->Get("properties")->Get("id"), nullptr);

  // The shared error envelope is declared once under components.
  const json::Value* components = doc.Get("components");
  ASSERT_NE(components, nullptr);
  ASSERT_NE(components->Get("schemas"), nullptr);
  EXPECT_NE(components->Get("schemas")->Get("Error"), nullptr);

  // Every operation routes failures to it via the default response.
  const json::Value* dflt = log_post->Get("responses")->Get("default");
  ASSERT_NE(dflt, nullptr);
  EXPECT_EQ(dflt->Get("content")
                ->Get("application/json")
                ->Get("schema")
                ->GetString("$ref"),
            "#/components/schemas/Error");
}

TEST_F(OpenApiServedTest, DocumentIsStableAcrossRunsAndFetches) {
  std::string first_run;
  for (int run = 0; run < 2; ++run) {
    apps::LoggingApp logging;
    apps::BankingApp banking;
    apps::SmallBankApp smallbank;
    apps::AppRegistry registry;
    registry.Add(&logging).Add(&banking).Add(&smallbank);
    ServiceHarness h;
    h.AddUser("alice");
    ASSERT_NE(h.StartGenesis(true, &registry), nullptr);
    std::string a = FetchApi(&h).Dump();
    std::string b = FetchApi(&h).Dump();
    EXPECT_EQ(a, b) << "same node returned different documents";
    ASSERT_FALSE(a.empty());
    if (run == 0) {
      first_run = a;
    } else {
      EXPECT_EQ(a, first_run) << "fresh service returned different document";
    }
  }
}

// --------------------------------------------------- SmallBank semantics

class SmallBankTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h_.AddUser("alice");
    n0_ = h_.StartGenesis(true, &app_);
    ASSERT_NE(n0_, nullptr);
    c_ = h_.UserClient("alice");
    auto created = c_->PostJson(
        "/app/sb/create_accounts",
        Obj({{"from", json::Value(0)}, {"to", json::Value(4)},
             {"savings", json::Value(100)}, {"checking", json::Value(50)}}));
    ASSERT_TRUE(created.ok());
    ASSERT_EQ(created->status, 200) << ToString(created->body);
  }

  int64_t Balance(int account) {
    auto resp = c_->Get("/app/sb/balance?account=" + std::to_string(account));
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200) << ToString(resp->body);
    auto body = json::Parse(ToString(resp->body));
    EXPECT_TRUE(body.ok());
    return body->GetInt("balance");
  }

  apps::SmallBankApp app_;
  ServiceHarness h_;
  node::Node* n0_ = nullptr;
  node::Client* c_ = nullptr;
};

TEST_F(SmallBankTest, OperationsFollowSmallBankSemantics) {
  // transact_savings accepts negative amounts but never overdraws.
  auto ts = c_->PostJson("/app/sb/transact_savings",
                         Obj({{"account", json::Value(0)},
                              {"amount", json::Value(-60)}}));
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(ts->status, 200);
  EXPECT_EQ(Balance(0), 90);  // 40 savings + 50 checking

  auto overdraw = c_->PostJson("/app/sb/transact_savings",
                               Obj({{"account", json::Value(0)},
                                    {"amount", json::Value(-41)}}));
  ASSERT_TRUE(overdraw.ok());
  EXPECT_EQ(overdraw->status, 409);
  EXPECT_EQ(ErrorCodeOf(*overdraw), "Conflict");
  EXPECT_EQ(Balance(0), 90);

  // send_payment moves checking funds; insufficient funds is a 409.
  auto pay = c_->PostJson("/app/sb/send_payment",
                          Obj({{"from", json::Value(1)},
                               {"to", json::Value(2)},
                               {"amount", json::Value(30)}}));
  ASSERT_TRUE(pay.ok());
  EXPECT_EQ(pay->status, 200);
  EXPECT_EQ(Balance(1), 120);
  EXPECT_EQ(Balance(2), 180);
  auto broke = c_->PostJson("/app/sb/send_payment",
                            Obj({{"from", json::Value(1)},
                                 {"to", json::Value(2)},
                                 {"amount", json::Value(1000)}}));
  ASSERT_TRUE(broke.ok());
  EXPECT_EQ(broke->status, 409);

  // write_check: covered check debits exactly; overdraft costs 1 extra.
  auto check = c_->PostJson("/app/sb/write_check",
                            Obj({{"account", json::Value(3)},
                                 {"amount", json::Value(120)}}));
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->status, 200);
  EXPECT_EQ(Balance(3), 30);  // 100 + 50 - 120
  auto bounce = c_->PostJson("/app/sb/write_check",
                             Obj({{"account", json::Value(3)},
                                  {"amount", json::Value(100)}}));
  ASSERT_TRUE(bounce.ok());
  EXPECT_EQ(bounce->status, 200);
  EXPECT_EQ(Balance(3), -71);  // 30 - (100 + 1) overdraft penalty

  // amalgamate drains savings+checking into the target's checking.
  auto am = c_->PostJson("/app/sb/amalgamate",
                         Obj({{"from", json::Value(2)},
                              {"to", json::Value(1)}}));
  ASSERT_TRUE(am.ok());
  EXPECT_EQ(am->status, 200);
  auto am_body = json::Parse(ToString(am->body));
  ASSERT_TRUE(am_body.ok());
  EXPECT_EQ(am_body->GetInt("moved"), 180);
  EXPECT_EQ(Balance(2), 0);
  EXPECT_EQ(Balance(1), 300);

  // Unknown accounts are 404s everywhere.
  auto missing = c_->PostJson("/app/sb/deposit_checking",
                              Obj({{"account", json::Value(99)},
                                   {"amount", json::Value(5)}}));
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  EXPECT_EQ(ErrorCodeOf(*missing), "ResourceNotFound");
}

TEST_F(SmallBankTest, SchemaRejectsNegativeDepositsBeforeExecution) {
  uint64_t seqno_before = n0_->last_seqno();
  // deposit_checking declares amount as uint64 (minimum 0): a negative
  // deposit is a schema violation, not a handler branch.
  auto neg = c_->PostJson("/app/sb/deposit_checking",
                          Obj({{"account", json::Value(0)},
                               {"amount", json::Value(-5)}}));
  ASSERT_TRUE(neg.ok());
  EXPECT_EQ(neg->status, 400);
  EXPECT_EQ(ErrorCodeOf(*neg), "InvalidInput");
  EXPECT_EQ(n0_->last_seqno(), seqno_before);
}

}  // namespace
}  // namespace ccf::testing
