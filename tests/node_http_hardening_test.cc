// HTTP session hardening (ISSUE satellite): keep-alive semantics,
// connection teardown on parse errors, and the per-connection pipelining
// cap. Driven through the simulator, where the enclave behavior is
// identical to live mode (the kCloseSession control message is simply
// ignored by the simulated host).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "json/json.h"
#include "rpc/session.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

json::Value LogBody(uint64_t id, const std::string& msg) {
  json::Object body;
  body["id"] = id;
  body["msg"] = msg;
  return json::Value(std::move(body));
}

TEST(HttpHardening, ConnectionCloseHeaderHonoured) {
  ServiceHarness h;
  h.AddUser("alice");
  ASSERT_NE(h.StartGenesis(), nullptr);
  node::Client* alice = h.UserClient("alice");

  http::Request req;
  req.method = "POST";
  req.path = "/app/log";
  req.headers["content-type"] = "application/json";
  req.headers["connection"] = "close";
  req.body = ToBytes(LogBody(1, "final word").Dump());
  auto resp = alice->Call(std::move(req));
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->status, 200);
  // The response announces the close.
  EXPECT_EQ(resp->GetHeader("connection"), "close");

  // The server-side session is gone: further requests on it get no
  // response.
  auto after = alice->Get("/app/log?id=1", 500);
  EXPECT_FALSE(after.ok());

  // A fresh session works (and sees the committed write).
  alice->Connect("n0");
  auto read = alice->Get("/app/log?id=1");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->status, 200);
  EXPECT_NE(ToString(read->body).find("final word"), std::string::npos);
}

TEST(HttpHardening, PipelineCapRejectsAndCloses) {
  ServiceHarness h;
  h.AddUser("alice");
  h.SetConfigTweak(
      [](node::NodeConfig* cfg) { cfg->http_max_pipeline = 2; });
  ASSERT_NE(h.StartGenesis(), nullptr);
  node::Client* alice = h.UserClient("alice");

  std::vector<http::Response> got;
  constexpr int kBurst = 5;
  for (int i = 0; i < kBurst; ++i) {
    http::Request req;
    req.method = "POST";
    req.path = "/app/log";
    req.headers["content-type"] = "application/json";
    req.body = ToBytes(LogBody(2, "b" + std::to_string(i)).Dump());
    alice->SendRequest(std::move(req), [&](Result<http::Response> resp) {
      if (resp.ok()) got.push_back(std::move(*resp));
    });
  }
  // The first two complete; the third exceeds the cap and is rejected
  // with 503 + connection: close; the rest die with the connection.
  ASSERT_TRUE(h.env().RunUntil([&] { return got.size() >= 3; }, 5000));
  h.env().Step(200);
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0].status, 200);
  EXPECT_EQ(got[1].status, 200);
  EXPECT_EQ(got[2].status, 503);
  EXPECT_EQ(got[2].GetHeader("connection"), "close");
}

TEST(HttpHardening, ParseErrorGets400AndClose) {
  ServiceHarness h;
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  sim::Environment& env = h.env();

  // A hand-rolled session speaking garbage: establish STLS, then send
  // bytes that fail HTTP request parsing.
  crypto::Drbg drbg("evil-client", 0);
  rpc::ClientSession session(n0->service_identity(), nullptr, std::nullopt,
                             &drbg);
  http::ResponseParser parser;
  std::vector<http::Response> responses;
  bool closed_hint = false;
  auto wrap = [](ByteSpan record) {
    Bytes out;
    out.push_back(1);  // kSessionRecord
    Append(&out, record);
    return out;
  };
  env.Register(
      "evil",
      [&](const std::string& from, ByteSpan data) {
        if (from != "n0" || data.empty() || data[0] != 1) return;
        auto out = session.OnRecord(data.subspan(1));
        if (!out.ok()) return;
        for (const Bytes& app : out->app_data) parser.Feed(app);
        while (true) {
          auto r = parser.Next();
          if (!r.ok() || !r->has_value()) break;
          if ((*r)->GetHeader("connection") == "close") closed_hint = true;
          responses.push_back(std::move(**r));
        }
      },
      [](uint64_t) {});
  env.Send("evil", "n0", wrap(session.Start()));
  ASSERT_TRUE(env.RunUntil([&] { return session.established(); }, 2000));

  auto garbage = session.Seal(ToBytes("definitely-not-http\r\n\r\n"));
  ASSERT_TRUE(garbage.ok());
  env.Send("evil", "n0", wrap(*garbage));
  ASSERT_TRUE(env.RunUntil([&] { return !responses.empty(); }, 2000));
  ASSERT_EQ(responses.size(), 1u);
  EXPECT_EQ(responses[0].status, 400);
  EXPECT_TRUE(closed_hint);

  // The session is dead: a valid request after the parse error gets
  // nothing back.
  http::Request valid;
  valid.method = "GET";
  valid.path = "/app/log?id=1";
  auto sealed = session.Seal(valid.Serialize());
  ASSERT_TRUE(sealed.ok());
  env.Send("evil", "n0", wrap(*sealed));
  env.Step(500);
  EXPECT_EQ(responses.size(), 1u);
  env.Unregister("evil");
}

}  // namespace
}  // namespace ccf::testing
