// Unit tests for the JSON Schema subset (json/schema.h): keyword
// coverage, error-path formatting, builder helpers, and the malformed-
// schema-fails-loudly rule the endpoint gate depends on.

#include "json/schema.h"

#include <gtest/gtest.h>

#include "json/json.h"

namespace ccf::json {
namespace {

Value P(const std::string& text) {
  auto v = Parse(text);
  EXPECT_TRUE(v.ok()) << text;
  return v.ok() ? *v : Value();
}

TEST(SchemaValidate, TypeKeywordCoversAllPrimitives) {
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"string"})"), Value("x")).ok());
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"integer"})"), Value(42)).ok());
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"number"})"), Value(1.5)).ok());
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"boolean"})"), Value(true)).ok());
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"null"})"), Value()).ok());
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"array"})"), P("[1,2]")).ok());
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"object"})"), P("{}")).ok());

  EXPECT_FALSE(SchemaValidate(P(R"({"type":"string"})"), Value(1)).ok());
  EXPECT_FALSE(SchemaValidate(P(R"({"type":"integer"})"), Value(1.5)).ok());
  // JSON has one number type: an integral double is an acceptable integer.
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"integer"})"), Value(3.0)).ok());
  // A number schema accepts integers.
  EXPECT_TRUE(SchemaValidate(P(R"({"type":"number"})"), Value(3)).ok());
  // Booleans are not numbers.
  EXPECT_FALSE(SchemaValidate(P(R"({"type":"integer"})"), Value(true)).ok());
}

TEST(SchemaValidate, ObjectKeywords) {
  Value schema = P(R"({
    "type": "object",
    "properties": {
      "id": {"type": "integer"},
      "msg": {"type": "string"}
    },
    "required": ["id", "msg"],
    "additionalProperties": false
  })");
  EXPECT_TRUE(SchemaValidate(schema, P(R"({"id":1,"msg":"hi"})")).ok());

  Status missing = SchemaValidate(schema, P(R"({"id":1})"));
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.message().find("msg"), std::string::npos);

  Status wrong = SchemaValidate(schema, P(R"({"id":"x","msg":"hi"})"));
  ASSERT_FALSE(wrong.ok());
  EXPECT_NE(wrong.message().find("$.id"), std::string::npos);

  Status extra = SchemaValidate(schema, P(R"({"id":1,"msg":"h","z":0})"));
  ASSERT_FALSE(extra.ok());
  EXPECT_NE(extra.message().find("z"), std::string::npos);

  // additionalProperties: true admits unknown fields.
  Value open = P(R"({"type":"object","additionalProperties":true})");
  EXPECT_TRUE(SchemaValidate(open, P(R"({"anything":1})")).ok());
}

TEST(SchemaValidate, ArrayItemsAndBoundsWithNestedErrorPath) {
  Value schema = P(R"({
    "type": "array",
    "items": {"type": "object",
              "properties": {"v": {"type": "integer"}},
              "required": ["v"]},
    "minItems": 1,
    "maxItems": 3
  })");
  EXPECT_TRUE(SchemaValidate(schema, P(R"([{"v":1},{"v":2}])")).ok());
  EXPECT_FALSE(SchemaValidate(schema, P("[]")).ok());
  EXPECT_FALSE(
      SchemaValidate(schema, P(R"([{"v":1},{"v":2},{"v":3},{"v":4}])")).ok());

  Status nested = SchemaValidate(schema, P(R"([{"v":1},{"v":"two"}])"));
  ASSERT_FALSE(nested.ok());
  EXPECT_NE(nested.message().find("$[1].v"), std::string::npos)
      << nested.message();
}

TEST(SchemaValidate, NumericAndStringBounds) {
  Value bounded = P(R"({"type":"integer","minimum":0,"maximum":10})");
  EXPECT_TRUE(SchemaValidate(bounded, Value(0)).ok());
  EXPECT_TRUE(SchemaValidate(bounded, Value(10)).ok());
  EXPECT_FALSE(SchemaValidate(bounded, Value(-1)).ok());
  EXPECT_FALSE(SchemaValidate(bounded, Value(11)).ok());

  Value sized = P(R"({"type":"string","minLength":2,"maxLength":4})");
  EXPECT_TRUE(SchemaValidate(sized, Value("ab")).ok());
  EXPECT_FALSE(SchemaValidate(sized, Value("a")).ok());
  EXPECT_FALSE(SchemaValidate(sized, Value("abcde")).ok());
}

TEST(SchemaValidate, EnumMatchesLiterals) {
  Value schema = P(R"({"enum": ["open", "closed", 3]})");
  EXPECT_TRUE(SchemaValidate(schema, Value("open")).ok());
  EXPECT_TRUE(SchemaValidate(schema, Value(3)).ok());
  EXPECT_FALSE(SchemaValidate(schema, Value("ajar")).ok());
}

TEST(SchemaValidate, UnknownKeywordsIgnoredMalformedSchemaRejected) {
  // OpenAPI annotations ride along without affecting validation.
  Value annotated = P(R"({"type":"string","description":"d","example":"e"})");
  EXPECT_TRUE(SchemaValidate(annotated, Value("x")).ok());

  // A malformed schema fails validation instead of accepting everything.
  EXPECT_FALSE(SchemaValidate(P(R"({"type": 12})"), Value("x")).ok());
  EXPECT_FALSE(
      SchemaValidate(P(R"({"type":"object","properties":[]})"), P("{}")).ok());
}

TEST(SchemaBuilders, ProduceValidatingSchemas) {
  Value schema = ObjectSchema(
      {{"account", Uint64Schema("id")},
       {"amount", IntegerSchema()},
       {"memo", StringSchema()},
       {"tags", ArraySchema(StringSchema())},
       {"flag", BoolSchema()},
       {"rate", NumberSchema()}},
      {"account", "amount"});

  EXPECT_TRUE(SchemaValidate(
      schema, P(R"({"account":1,"amount":-5,"memo":"m","tags":["a"],
                    "flag":true,"rate":0.5})")).ok());
  // Uint64Schema carries minimum 0.
  EXPECT_FALSE(SchemaValidate(schema, P(R"({"account":-1,"amount":0})")).ok());
  // Builders close the object.
  EXPECT_FALSE(
      SchemaValidate(schema, P(R"({"account":1,"amount":0,"zz":1})")).ok());
  // Descriptions survive as annotations.
  EXPECT_EQ(schema.Get("properties")
                ->Get("account")
                ->GetString("description"),
            "id");
}

}  // namespace
}  // namespace ccf::json
