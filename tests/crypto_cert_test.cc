#include <gtest/gtest.h>

#include "crypto/cert.h"

namespace ccf::crypto {
namespace {

TEST(Certificate, SelfSignedVerifies) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("service-key"));
  Certificate cert =
      IssueCertificate("service", "service", kp.public_key(), kp, "");
  EXPECT_TRUE(VerifyCertificate(cert, kp.public_key()).ok());
}

TEST(Certificate, IssuedCertChainsToIssuer) {
  KeyPair service = KeyPair::FromSeed(ToBytes("service-key"));
  KeyPair node = KeyPair::FromSeed(ToBytes("node-key"));
  Certificate cert = IssueCertificate("node-1", "node", node.public_key(),
                                      service, "service");
  EXPECT_TRUE(VerifyCertificate(cert, service.public_key()).ok());
  // Not under a different key.
  EXPECT_FALSE(VerifyCertificate(cert, node.public_key()).ok());
}

TEST(Certificate, SerializationRoundTrip) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("rt-key"));
  Certificate cert =
      IssueCertificate("member0", "member", kp.public_key(), kp, "", 10, 20);
  Bytes ser = cert.Serialize();
  auto back = Certificate::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->subject, "member0");
  EXPECT_EQ(back->role, "member");
  EXPECT_EQ(back->public_key, kp.public_key());
  EXPECT_EQ(back->valid_from, 10u);
  EXPECT_EQ(back->valid_to, 20u);
  EXPECT_EQ(back->signature, cert.signature);
  EXPECT_EQ(back->Fingerprint(), cert.Fingerprint());
}

TEST(Certificate, TamperedFieldFailsVerification) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("tamper-key"));
  Certificate cert =
      IssueCertificate("user1", "user", kp.public_key(), kp, "");
  cert.subject = "user2";
  EXPECT_FALSE(VerifyCertificate(cert, kp.public_key()).ok());
}

TEST(Certificate, ValidityWindowEnforced) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("window-key"));
  Certificate cert =
      IssueCertificate("u", "user", kp.public_key(), kp, "", 100, 200);
  EXPECT_FALSE(VerifyCertificate(cert, kp.public_key(), 99).ok());
  EXPECT_TRUE(VerifyCertificate(cert, kp.public_key(), 100).ok());
  EXPECT_TRUE(VerifyCertificate(cert, kp.public_key(), 199).ok());
  EXPECT_FALSE(VerifyCertificate(cert, kp.public_key(), 200).ok());
}

TEST(Certificate, FingerprintUniquePerCert) {
  KeyPair a = KeyPair::FromSeed(ToBytes("fp-a"));
  KeyPair b = KeyPair::FromSeed(ToBytes("fp-b"));
  Certificate ca = IssueCertificate("x", "user", a.public_key(), a, "");
  Certificate cb = IssueCertificate("x", "user", b.public_key(), b, "");
  EXPECT_NE(ca.Fingerprint(), cb.Fingerprint());
}

TEST(Certificate, DeserializeRejectsTruncation) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("trunc-key"));
  Certificate cert = IssueCertificate("u", "user", kp.public_key(), kp, "");
  Bytes ser = cert.Serialize();
  ser.pop_back();
  EXPECT_FALSE(Certificate::Deserialize(ser).ok());
  Bytes extended = cert.Serialize();
  extended.push_back(0);
  EXPECT_FALSE(Certificate::Deserialize(extended).ok());
}

}  // namespace
}  // namespace ccf::crypto
