#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/ec25519.h"
#include "crypto/hmac.h"
#include "crypto/sign.h"

namespace ccf::crypto {
namespace {

using ec::Fe;
using ec::Point;
using ec::Scalar;

Fe RandomFe(Drbg* drbg) {
  uint8_t bytes[32];
  drbg->Generate(bytes, 32);
  bytes[31] &= 0x7f;
  return ec::FeFromBytes(bytes);
}

Scalar RandomScalar(Drbg* drbg) {
  Bytes b = drbg->Generate(64);
  return ec::ScalarReduce(b);
}

TEST(Fe25519, BytesRoundTrip) {
  Drbg drbg("fe-bytes", 0);
  for (int i = 0; i < 20; ++i) {
    Fe a = RandomFe(&drbg);
    auto bytes = ec::FeToBytes(a);
    Fe b = ec::FeFromBytes(bytes.data());
    EXPECT_TRUE(ec::FeEqual(a, b));
  }
}

TEST(Fe25519, CanonicalEncodingOfPMinusOne) {
  // p - 1 = 2^255 - 20 must encode canonically (not wrap).
  uint8_t bytes[32];
  memset(bytes, 0xff, 32);
  bytes[0] = 0xec;  // p-1 little-endian low byte: 0xed - 1
  bytes[31] = 0x7f;
  Fe a = ec::FeFromBytes(bytes);
  auto enc = ec::FeToBytes(a);
  EXPECT_EQ(Bytes(enc.begin(), enc.end()), Bytes(bytes, bytes + 32));
}

TEST(Fe25519, NonCanonicalReduces) {
  // p itself must encode as zero.
  uint8_t bytes[32];
  memset(bytes, 0xff, 32);
  bytes[0] = 0xed;
  bytes[31] = 0x7f;
  Fe a = ec::FeFromBytes(bytes);
  EXPECT_TRUE(ec::FeIsZero(a));
}

TEST(Fe25519, FieldAxioms) {
  Drbg drbg("fe-axioms", 0);
  for (int i = 0; i < 10; ++i) {
    Fe a = RandomFe(&drbg), b = RandomFe(&drbg), c = RandomFe(&drbg);
    // Commutativity and associativity of mul.
    EXPECT_TRUE(ec::FeEqual(ec::FeMul(a, b), ec::FeMul(b, a)));
    EXPECT_TRUE(ec::FeEqual(ec::FeMul(ec::FeMul(a, b), c),
                            ec::FeMul(a, ec::FeMul(b, c))));
    // Distributivity.
    EXPECT_TRUE(ec::FeEqual(ec::FeMul(a, ec::FeAdd(b, c)),
                            ec::FeAdd(ec::FeMul(a, b), ec::FeMul(a, c))));
    // Sub inverts add.
    EXPECT_TRUE(ec::FeEqual(ec::FeSub(ec::FeAdd(a, b), b), a));
    // Square matches mul.
    EXPECT_TRUE(ec::FeEqual(ec::FeSquare(a), ec::FeMul(a, a)));
  }
}

TEST(Fe25519, Inversion) {
  Drbg drbg("fe-inv", 0);
  for (int i = 0; i < 10; ++i) {
    Fe a = RandomFe(&drbg);
    if (ec::FeIsZero(a)) continue;
    Fe inv = ec::FeInvert(a);
    EXPECT_TRUE(ec::FeEqual(ec::FeMul(a, inv), ec::FeOne()));
  }
  EXPECT_TRUE(ec::FeIsZero(ec::FeInvert(ec::FeZero())));
}

TEST(Fe25519, SqrtOfSquares) {
  Drbg drbg("fe-sqrt", 0);
  for (int i = 0; i < 10; ++i) {
    Fe a = RandomFe(&drbg);
    Fe a2 = ec::FeSquare(a);
    Fe r;
    ASSERT_TRUE(ec::FeSqrt(a2, &r));
    EXPECT_TRUE(ec::FeEqual(ec::FeSquare(r), a2));
  }
}

TEST(Fe25519, NonResidueRejected) {
  // p = 2^255-19 is 1 mod 4, so -1 is a quadratic residue...
  Fe minus_one = ec::FeNeg(ec::FeOne());
  Fe r;
  ASSERT_TRUE(ec::FeSqrt(minus_one, &r));
  EXPECT_TRUE(ec::FeEqual(ec::FeSquare(r), minus_one));
  // ...and p is 5 mod 8, so 2 is a non-residue; so is -2 (= residue * 2).
  Fe two = ec::FeFromU64(2);
  EXPECT_FALSE(ec::FeSqrt(two, &r));
  EXPECT_FALSE(ec::FeSqrt(ec::FeNeg(two), &r));
}

TEST(Ec25519, BasePointOnCurve) {
  EXPECT_TRUE(ec::IsOnCurve(ec::BasePoint()));
  EXPECT_TRUE(ec::IsOnCurve(ec::Identity()));
}

TEST(Ec25519, BasePointMatchesRfc8032) {
  // The standard encoding of the ed25519 base point.
  auto enc = ec::Encode(ec::BasePoint());
  EXPECT_EQ(HexEncode(ByteSpan(enc.data(), enc.size())),
            "5866666666666666666666666666666666666666666666666666666666666666");
}

TEST(Ec25519, BasePointHasOrderL) {
  // l * B == identity validates both the scalar order constant and the
  // group arithmetic against each other.
  Scalar l_minus_1{};
  // l - 1: reduce(-1 mod l) computed as l + (-1) -> use ScalarReduce of
  // (l-1) bytes directly: build from reduce of large value: 0 - 1 isn't
  // representable, so compute (l-1) = reduce(2*l - 1) via bytes of l.
  // Simpler: s = reduce(big) where big = l-1 little-endian.
  uint8_t lm1[32] = {0xec, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                     0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                     0,    0,    0,    0,    0,    0,    0,    0,
                     0,    0,    0,    0,    0,    0,    0,    0x10};
  memcpy(l_minus_1.data(), lm1, 32);
  ASSERT_TRUE(ec::ScalarIsCanonical(l_minus_1));
  Point p = ec::ScalarMultBase(l_minus_1);
  // (l-1)*B + B == identity.
  Point sum = ec::Add(p, ec::BasePoint());
  EXPECT_TRUE(ec::IsIdentity(sum));
  // And (l-1)*B == -B.
  EXPECT_TRUE(ec::PointEqual(p, ec::Negate(ec::BasePoint())));
}

TEST(Ec25519, GroupLaws) {
  Drbg drbg("group-laws", 0);
  for (int i = 0; i < 5; ++i) {
    Point p = ec::ScalarMultBase(RandomScalar(&drbg));
    Point q = ec::ScalarMultBase(RandomScalar(&drbg));
    Point r = ec::ScalarMultBase(RandomScalar(&drbg));
    // Commutativity.
    EXPECT_TRUE(ec::PointEqual(ec::Add(p, q), ec::Add(q, p)));
    // Associativity.
    EXPECT_TRUE(ec::PointEqual(ec::Add(ec::Add(p, q), r),
                               ec::Add(p, ec::Add(q, r))));
    // Identity.
    EXPECT_TRUE(ec::PointEqual(ec::Add(p, ec::Identity()), p));
    // Inverse.
    EXPECT_TRUE(ec::IsIdentity(ec::Add(p, ec::Negate(p))));
    // Unified add doubles correctly.
    EXPECT_TRUE(ec::PointEqual(ec::Add(p, p), ec::Double(p)));
    // Results stay on the curve.
    EXPECT_TRUE(ec::IsOnCurve(ec::Add(p, q)));
  }
}

TEST(Ec25519, ScalarMultDistributes) {
  Drbg drbg("scalar-dist", 0);
  Scalar a = RandomScalar(&drbg);
  Scalar b = RandomScalar(&drbg);
  Scalar zero{};
  // (a+b)*B == a*B + b*B; a+b computed via MulAdd(a, 1, b).
  Scalar one{};
  one[0] = 1;
  Scalar a_plus_b = ec::ScalarMulAdd(a, one, b);
  Point lhs = ec::ScalarMultBase(a_plus_b);
  Point rhs = ec::Add(ec::ScalarMultBase(a), ec::ScalarMultBase(b));
  EXPECT_TRUE(ec::PointEqual(lhs, rhs));
  EXPECT_TRUE(ec::IsIdentity(ec::ScalarMultBase(zero)));
}

// The Straus multi-scalar engine behind VerifyBatch must agree with the
// naive sum of individual scalar multiplications for every batch size.
TEST(Ec25519, MultiScalarMultMatchesNaiveSum) {
  Drbg drbg("msm-test", 0);
  for (size_t n = 0; n <= 8; ++n) {
    std::vector<ec::Scalar> scalars;
    std::vector<ec::Point> points;
    for (size_t i = 0; i < n; ++i) {
      scalars.push_back(ec::ScalarReduce(drbg.Generate(64)));
      ec::Scalar p = ec::ScalarReduce(drbg.Generate(64));
      points.push_back(ec::ScalarMultBase(p));
    }
    ec::Point naive = ec::Identity();
    for (size_t i = 0; i < n; ++i) {
      naive = ec::Add(naive, ec::ScalarMult(scalars[i], points[i]));
    }
    EXPECT_TRUE(ec::PointEqual(ec::MultiScalarMult(scalars, points), naive))
        << "n=" << n;
  }
}

TEST(Ec25519, MultiScalarMultEdgeScalars) {
  // Zero scalars contribute nothing; a scalar of 1 contributes the point.
  ec::Scalar zero{};
  ec::Scalar one{};
  one[0] = 1;
  ec::Scalar k = ec::ScalarReduce(ToBytes("some-scalar-seed................"));
  ec::Point p = ec::ScalarMultBase(k);
  std::vector<ec::Scalar> scalars = {zero, one};
  std::vector<ec::Point> points = {ec::BasePoint(), p};
  EXPECT_TRUE(ec::PointEqual(ec::MultiScalarMult(scalars, points), p));
  std::vector<ec::Scalar> zeros = {zero, zero};
  EXPECT_TRUE(ec::IsIdentity(ec::MultiScalarMult(zeros, points)));
}

TEST(Ec25519, EncodeDecodeRoundTrip) {
  Drbg drbg("pt-encode", 0);
  for (int i = 0; i < 10; ++i) {
    Point p = ec::ScalarMultBase(RandomScalar(&drbg));
    auto enc = ec::Encode(p);
    auto dec = ec::Decode(ByteSpan(enc.data(), enc.size()));
    ASSERT_TRUE(dec.ok());
    EXPECT_TRUE(ec::PointEqual(p, *dec));
    EXPECT_EQ(ec::Encode(*dec), enc);
  }
}

TEST(Ec25519, DecodeRejectsGarbage) {
  // Wrong length.
  EXPECT_FALSE(ec::Decode(Bytes(31, 0)).ok());
  // Mostly-random encodings: about half of y values are off-curve; check
  // we never crash and reject at least some.
  Drbg drbg("pt-garbage", 0);
  int rejected = 0;
  for (int i = 0; i < 20; ++i) {
    Bytes b = drbg.Generate(32);
    auto dec = ec::Decode(b);
    if (!dec.ok()) {
      ++rejected;
    } else {
      EXPECT_TRUE(ec::IsOnCurve(*dec));
    }
  }
  EXPECT_GT(rejected, 0);
}

TEST(Ec25519, DecodeRejectsNonCanonicalY) {
  // Encoding of p (all ones pattern for y >= p) must be rejected.
  Bytes enc(32, 0xff);
  enc[0] = 0xed;
  enc[31] = 0x7f;
  EXPECT_FALSE(ec::Decode(enc).ok());
}

TEST(Scalar25519, ReduceIsCanonical) {
  Drbg drbg("scalar-reduce", 0);
  for (int i = 0; i < 20; ++i) {
    Bytes b = drbg.Generate(64);
    Scalar s = ec::ScalarReduce(b);
    EXPECT_TRUE(ec::ScalarIsCanonical(s));
  }
}

TEST(Scalar25519, MulAddMatchesRepeatedAdd) {
  Scalar two{}, three{}, five{};
  two[0] = 2;
  three[0] = 3;
  five[0] = 5;
  Scalar r = ec::ScalarMulAdd(two, three, five);  // 2*3+5 = 11
  Scalar eleven{};
  eleven[0] = 11;
  EXPECT_EQ(r, eleven);
}

// ------------------------------------------------------------- Signatures

TEST(Schnorr, SignVerifyRoundTrip) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("seed-alpha"));
  Bytes msg = ToBytes("state machine replication");
  auto sig = kp.Sign(msg);
  EXPECT_TRUE(Verify(kp.public_key(), msg, sig));
}

TEST(Schnorr, DeterministicSignature) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("seed-alpha"));
  auto s1 = kp.Sign(ToBytes("m"));
  auto s2 = kp.Sign(ToBytes("m"));
  EXPECT_EQ(s1, s2);
}

TEST(Schnorr, RejectsWrongMessage) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("seed-alpha"));
  auto sig = kp.Sign(ToBytes("message-1"));
  EXPECT_FALSE(Verify(kp.public_key(), ToBytes("message-2"), sig));
}

TEST(Schnorr, RejectsWrongKey) {
  KeyPair a = KeyPair::FromSeed(ToBytes("seed-a"));
  KeyPair b = KeyPair::FromSeed(ToBytes("seed-b"));
  auto sig = a.Sign(ToBytes("msg"));
  EXPECT_FALSE(Verify(b.public_key(), ToBytes("msg"), sig));
}

TEST(Schnorr, RejectsBitFlips) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("seed-flip"));
  Bytes msg = ToBytes("flip me");
  auto sig = kp.Sign(msg);
  for (size_t i = 0; i < sig.size(); i += 7) {
    auto bad = sig;
    bad[i] ^= 0x40;
    EXPECT_FALSE(Verify(kp.public_key(), msg, bad)) << "byte " << i;
  }
}

TEST(Schnorr, RejectsNonCanonicalS) {
  KeyPair kp = KeyPair::FromSeed(ToBytes("seed-canon"));
  Bytes msg = ToBytes("msg");
  auto sig = kp.Sign(msg);
  // Set s >= l by forcing high bits.
  auto bad = sig;
  bad[63] = 0xff;
  EXPECT_FALSE(Verify(kp.public_key(), msg, bad));
}

TEST(Schnorr, DifferentSeedsDifferentKeys) {
  KeyPair a = KeyPair::FromSeed(ToBytes("s1"));
  KeyPair b = KeyPair::FromSeed(ToBytes("s2"));
  EXPECT_NE(a.public_key(), b.public_key());
}

TEST(Ecdh, SharedSecretAgreement) {
  KeyPair a = KeyPair::FromSeed(ToBytes("dh-a"));
  KeyPair b = KeyPair::FromSeed(ToBytes("dh-b"));
  auto sa = a.DeriveSharedSecret(b.public_key());
  auto sb = b.DeriveSharedSecret(a.public_key());
  ASSERT_TRUE(sa.ok());
  ASSERT_TRUE(sb.ok());
  EXPECT_EQ(*sa, *sb);
  EXPECT_EQ(sa->size(), 32u);
}

TEST(Ecdh, DistinctPeersDistinctSecrets) {
  KeyPair a = KeyPair::FromSeed(ToBytes("dh-a"));
  KeyPair b = KeyPair::FromSeed(ToBytes("dh-b"));
  KeyPair c = KeyPair::FromSeed(ToBytes("dh-c"));
  EXPECT_NE(*a.DeriveSharedSecret(b.public_key()),
            *a.DeriveSharedSecret(c.public_key()));
}

TEST(Ecies, SealOpenRoundTrip) {
  Drbg drbg("ecies", 0);
  KeyPair recipient = KeyPair::FromSeed(ToBytes("recipient"));
  Bytes msg = ToBytes("recovery share payload");
  auto sealed = EciesSeal(recipient.public_key(), msg, &drbg);
  ASSERT_TRUE(sealed.ok());
  auto opened = recipient.EciesOpen(*sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, msg);
}

TEST(Ecies, WrongRecipientFails) {
  Drbg drbg("ecies-wrong", 0);
  KeyPair r1 = KeyPair::FromSeed(ToBytes("r1"));
  KeyPair r2 = KeyPair::FromSeed(ToBytes("r2"));
  auto sealed = EciesSeal(r1.public_key(), ToBytes("secret"), &drbg);
  ASSERT_TRUE(sealed.ok());
  EXPECT_FALSE(r2.EciesOpen(*sealed).ok());
}

TEST(Ecies, TamperedBlobFails) {
  Drbg drbg("ecies-tamper", 0);
  KeyPair r = KeyPair::FromSeed(ToBytes("r"));
  auto sealed = EciesSeal(r.public_key(), ToBytes("secret"), &drbg);
  ASSERT_TRUE(sealed.ok());
  Bytes bad = *sealed;
  bad[40] ^= 1;
  EXPECT_FALSE(r.EciesOpen(bad).ok());
}

}  // namespace
}  // namespace ccf::crypto
