// Telemetry endpoint tests ("observe" label): GET /node/metrics JSON and
// Prometheus exposition after a scripted workload, monotonicity across
// further load, and agreement between the legacy alias endpoints
// (/node/crypto_ops, /node/historical) and the unified registry.

#include <gtest/gtest.h>

#include <string>

#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

bool AllQuiesced(ServiceHarness* h) {
  uint64_t last = 0;
  bool first = true;
  for (const std::string& id : {"n0", "n1", "n2"}) {
    node::Node* n = h->node(id);
    if (n == nullptr || !n->has_joined()) return false;
    if (first) {
      last = n->last_seqno();
      first = false;
    }
    if (n->last_seqno() != last || n->commit_seqno() != last) return false;
  }
  return last > 0;
}

class NodeMetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    h_.AddUser("alice");
    ASSERT_NE(h_.StartGenesis(), nullptr);
    ASSERT_NE(h_.JoinAndTrust("n1"), nullptr);
    ASSERT_NE(h_.JoinAndTrust("n2"), nullptr);
  }

  // Writes `n` log entries and one read, then waits for quiescence.
  void Workload(int n, int base = 0) {
    node::Client* c = h_.UserClient("alice");
    for (int i = 0; i < n; ++i) {
      json::Object msg;
      msg["id"] = base + i;
      msg["msg"] = "entry-" + std::to_string(base + i);
      auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 3000);
      ASSERT_TRUE(w.ok());
      ASSERT_EQ(w->status, 200);
    }
    auto r = c->Get("/app/log?id=" + std::to_string(base), 3000);
    ASSERT_TRUE(r.ok());
    ASSERT_TRUE(h_.env().RunUntil([&] { return AllQuiesced(&h_); }, 5000));
  }

  json::Value FetchMetrics() {
    auto resp = h_.AnonymousClient()->Get("/node/metrics", 3000);
    EXPECT_TRUE(resp.ok());
    EXPECT_EQ(resp->status, 200);
    auto parsed = json::Parse(ToString(resp->body));
    EXPECT_TRUE(parsed.ok());
    return *parsed;
  }

  ServiceHarness h_;
};

TEST_F(NodeMetricsTest, JsonShapeAndPerEndpointLatencies) {
  Workload(6);
  json::Value body = FetchMetrics();
  EXPECT_EQ(body.GetString("node_id"), "n0");
  const json::Value* m = body.Get("metrics");
  ASSERT_NE(m, nullptr);

  const json::Value* counters = m->Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_GE(counters->GetInt("rpc.requests.POST /app/log"), 6);
  EXPECT_GE(counters->GetInt("rpc.status.2xx"), 6);
  EXPECT_GT(counters->GetInt("crypto.signs"), 0);

  const json::Value* gauges = m->Get("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* commit = gauges->Get("consensus.commit_seqno");
  ASSERT_NE(commit, nullptr);
  EXPECT_GT(commit->GetInt("value"), 0);
  const json::Value* ring = gauges->Get("tee.e2h.ring_used_bytes");
  ASSERT_NE(ring, nullptr);
  EXPECT_GT(ring->GetInt("max"), 0);
  const json::Value* ledger = gauges->Get("ledger.entries");
  ASSERT_NE(ledger, nullptr);
  EXPECT_GT(ledger->GetInt("value"), 0);

  const json::Value* hists = m->Get("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* lat = hists->Get("rpc.latency_us.POST /app/log");
  ASSERT_NE(lat, nullptr);
  EXPECT_GE(lat->GetInt("count"), 6);
  EXPECT_LE(lat->GetInt("p50"), lat->GetInt("p99"));
  EXPECT_LE(lat->GetInt("p99"), lat->GetInt("max"));
  const json::Value* commit_lat = hists->Get("consensus.commit_latency_ms");
  ASSERT_NE(commit_lat, nullptr);
  EXPECT_GT(commit_lat->GetInt("count"), 0);
}

// The batched-execution path (DESIGN.md §12) exports its shape through
// the same endpoint: request/batch counters, the batch-size histogram,
// and zero conflicts for an uncontended workload.
TEST_F(NodeMetricsTest, ExecCountersAndBatchHistogram) {
  Workload(6);
  json::Value body = FetchMetrics();
  const json::Value* m = body.Get("metrics");
  ASSERT_NE(m, nullptr);

  const json::Value* counters = m->Get("counters");
  ASSERT_NE(counters, nullptr);
  int64_t requests = counters->GetInt("exec.requests");
  int64_t batches = counters->GetInt("exec.batches");
  // Every eligible request (all of /app/log's traffic) went through the
  // batch path.
  EXPECT_GE(requests, 7);  // 6 writes + 1 read
  EXPECT_GE(batches, 1);
  EXPECT_LE(batches, requests);
  // Sequential blocking clients produce no contention.
  EXPECT_EQ(counters->GetInt("exec.conflicts"), 0);
  EXPECT_EQ(counters->GetInt("exec.retries"), 0);
  EXPECT_EQ(counters->GetInt("exec.aborts"), 0);

  const json::Value* hists = m->Get("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* bs = hists->Get("exec.batch_size");
  ASSERT_NE(bs, nullptr);
  EXPECT_EQ(bs->GetInt("count"), batches);
  EXPECT_GE(bs->GetInt("max"), 1);
}

TEST_F(NodeMetricsTest, CountersAreMonotonicAcrossWorkload) {
  Workload(4);
  json::Value before = FetchMetrics();
  const json::Value* c0 = before.Get("metrics")->Get("counters");
  ASSERT_NE(c0, nullptr);
  int64_t writes0 = c0->GetInt("rpc.requests.POST /app/log");
  int64_t signs0 = c0->GetInt("crypto.signs");
  int64_t ok0 = c0->GetInt("rpc.status.2xx");

  Workload(5, 100);
  json::Value after = FetchMetrics();
  const json::Value* c1 = after.Get("metrics")->Get("counters");
  ASSERT_NE(c1, nullptr);
  EXPECT_GE(c1->GetInt("rpc.requests.POST /app/log"), writes0 + 5);
  EXPECT_GE(c1->GetInt("crypto.signs"), signs0);
  EXPECT_GT(c1->GetInt("rpc.status.2xx"), ok0);
}

TEST_F(NodeMetricsTest, PrometheusExposition) {
  Workload(3);
  auto resp =
      h_.AnonymousClient()->Get("/node/metrics?format=prometheus", 3000);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);
  auto ct = resp->headers.find("content-type");
  ASSERT_NE(ct, resp->headers.end());
  EXPECT_NE(ct->second.find("text/plain"), std::string::npos);
  std::string body = ToString(resp->body);
  EXPECT_NE(body.find("# TYPE ccf_consensus_commit_seqno gauge"),
            std::string::npos);
  EXPECT_NE(body.find("ccf_rpc_requests_POST__app_log"), std::string::npos);
  EXPECT_NE(body.find("ccf_rpc_latency_us_POST__app_log{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(body.find("ccf_crypto_signs"), std::string::npos);
}

TEST_F(NodeMetricsTest, AliasEndpointsMatchRegistry) {
  Workload(5);
  node::Node* n0 = h_.node("n0");
  node::Client* c = h_.AnonymousClient();

  auto ops_resp = c->Get("/node/crypto_ops", 3000);
  ASSERT_TRUE(ops_resp.ok());
  ASSERT_EQ(ops_resp->status, 200);
  auto ops = json::Parse(ToString(ops_resp->body));
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(static_cast<uint64_t>(ops->GetInt("signs")),
            n0->metrics().ScalarValue("crypto.signs"));
  EXPECT_EQ(static_cast<uint64_t>(ops->GetInt("verifies_single")),
            n0->metrics().ScalarValue("crypto.verifies_single"));
  EXPECT_EQ(static_cast<uint64_t>(ops->GetInt("verify_failures")),
            n0->metrics().ScalarValue("crypto.verify_failures"));
  // The struct snapshot accessor agrees too (the migration kept it).
  EXPECT_EQ(static_cast<uint64_t>(ops->GetInt("signs")),
            n0->crypto_ops().signs);

  auto hist_resp = c->Get("/node/historical", 3000);
  ASSERT_TRUE(hist_resp.ok());
  ASSERT_EQ(hist_resp->status, 200);
  auto hist = json::Parse(ToString(hist_resp->body));
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(static_cast<uint64_t>(hist->GetInt("host_fetch_requests")),
            n0->metrics().ScalarValue("historical.host_fetch_requests"));
  EXPECT_EQ(static_cast<uint64_t>(hist->GetInt("entries_verified")),
            n0->metrics().ScalarValue("historical.entries_verified"));
  EXPECT_EQ(static_cast<uint64_t>(hist->GetInt("entries_rejected")),
            n0->historical_counters().entries_rejected);
}

}  // namespace
}  // namespace ccf::testing
