// Live-mode smoke test (ISSUE satellite): a real 3-node cluster over
// loopback TCP — governance-trusted joiners, client writes/reads, then a
// primary kill with wall-clock re-election and recovery of the dead node.
//
// This is the end-to-end proof that the SAME enclave node runs under the
// live host driver: everything the simulator suites exercise in virtual
// time happens here on actual sockets and threads.

#include <gtest/gtest.h>

#include <string>

#include "tests/live_harness.h"

namespace ccf::testing {
namespace {

json::Value LogBody(uint64_t id, const std::string& msg) {
  json::Object body;
  body["id"] = id;
  body["msg"] = msg;
  return json::Value(std::move(body));
}

TEST(HostLiveSmoke, ThreeNodeWriteReadKillRecover) {
  LiveServiceHarness h;
  h.AddUser("alice");
  ASSERT_NE(h.StartGenesis(), nullptr);
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);

  // Writes against the primary, replicated to everyone.
  host::LiveClient* alice = h.UserClient("alice", "n0");
  ASSERT_NE(alice, nullptr);
  uint64_t last_seqno = 0;
  for (int i = 0; i < 20; ++i) {
    auto resp = alice->PostJson("/app/log",
                                LogBody(7, "entry " + std::to_string(i)));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->status, 200) << ToString(resp->body);
    auto txid = host::LiveClient::TxIdOf(*resp);
    ASSERT_TRUE(txid.has_value());
    last_seqno = txid->second;
  }
  ASSERT_TRUE(h.WaitForCommitEverywhere(last_seqno));

  auto read = alice->Get("/app/log?id=7");
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read->status, 200);
  EXPECT_NE(ToString(read->body).find("entry 19"), std::string::npos);

  // Kill the primary. The survivors elect on wall-clock timeouts and keep
  // serving; the logged data survives.
  std::string old_primary = h.PrimaryId();
  ASSERT_FALSE(old_primary.empty());
  h.Kill(old_primary);
  std::string new_primary;
  ASSERT_TRUE(LiveWaitFor(
      [&] {
        new_primary = h.PrimaryId(200);
        return !new_primary.empty() && new_primary != old_primary;
      },
      10000));

  // The new primary may still be committing its term marker, or a client
  // may hit a node mid-transition: reconnect and retry until a write lands.
  Result<http::Response> resp = Status::Unavailable("not sent");
  ASSERT_TRUE(LiveWaitFor(
      [&] {
        std::string target = h.PrimaryId(200);
        if (target.empty()) return false;
        host::LiveClient* c = h.UserClient("alice", target);
        if (c == nullptr || !c->connected()) {
          h.DropClients();
          return false;
        }
        resp = c->PostJson("/app/log", LogBody(7, "after failover"), 2000);
        if (!resp.ok() || resp->status != 200) {
          h.DropClients();
          return false;
        }
        return true;
      },
      15000));
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->status, 200);

  std::string final_primary = h.PrimaryId();
  host::LiveClient* alice2 = h.UserClient("alice", final_primary);
  ASSERT_NE(alice2, nullptr);
  auto read2 = alice2->Get("/app/log?id=7");
  ASSERT_TRUE(read2.ok());
  ASSERT_EQ(read2->status, 200);
  EXPECT_NE(ToString(read2->body).find("after failover"), std::string::npos);

  // "Recover": grow the cluster back to three — join + trust works against
  // the post-failover configuration (governance rides forwarding to the
  // new primary).
  h.SetGovNode(final_primary);
  ASSERT_NE(h.JoinAndTrust("n3", 15000, final_primary), nullptr);
}

}  // namespace
}  // namespace ccf::testing
