// SmallBank determinism under batched optimistic execution (DESIGN.md
// §12, §14): a seeded Zipfian workload hammers a handful of hot accounts
// with pipelined read-modify-writes, so exec batches carry genuine OCC
// conflicts. A service configured with exec_threads=4 must replay
// bit-identically to the inline exec_threads=0 baseline: same per-request
// statuses and bodies in order, same commit seqno, same Merkle root and
// committed KV state. 20 batches x 10 seeds = 200 seeded workloads, each
// run both ways.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "apps/smallbank.h"
#include "apps/workload.h"
#include "crypto/hmac.h"
#include "json/json.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

constexpr size_t kAccounts = 16;
constexpr double kSkew = 0.99;
constexpr int kRequests = 64;
constexpr int kPipelineDepth = 8;

struct SbOutcome {
  std::string failure;
  // One line per response, in submission order: "<status> <body>".
  std::string trace;
  Bytes final_state;
};

http::Request SbPost(const std::string& path, json::Object body) {
  http::Request r;
  r.method = "POST";
  r.path = path;
  r.body = ToBytes(json::Value(std::move(body)).Dump());
  r.headers["content-type"] = "application/json";
  return r;
}

// Draws the classic SmallBank transaction mix with Zipfian-hot accounts.
// Consuming the DRBG identically on every run makes the request sequence
// a pure function of the seed.
http::Request DrawRequest(crypto::Drbg* drbg,
                          const apps::ZipfianSampler& zipf) {
  int64_t a = static_cast<int64_t>(zipf.Sample(drbg));
  int64_t b = static_cast<int64_t>(zipf.Sample(drbg));
  int64_t amount = static_cast<int64_t>(drbg->Uniform(40)) + 1;
  switch (drbg->Uniform(6)) {
    case 0: {
      json::Object body;
      body["account"] = a;
      body["amount"] = (drbg->Uniform(2) == 0) ? amount : -amount;
      return SbPost("/app/sb/transact_savings", std::move(body));
    }
    case 1: {
      json::Object body;
      body["account"] = a;
      body["amount"] = amount;
      return SbPost("/app/sb/deposit_checking", std::move(body));
    }
    case 2: {
      json::Object body;
      body["from"] = a;
      body["to"] = b;
      body["amount"] = amount;
      return SbPost("/app/sb/send_payment", std::move(body));
    }
    case 3: {
      json::Object body;
      body["account"] = a;
      body["amount"] = amount;
      return SbPost("/app/sb/write_check", std::move(body));
    }
    case 4: {
      json::Object body;
      body["from"] = a;
      body["to"] = b;
      return SbPost("/app/sb/amalgamate", std::move(body));
    }
    default: {
      http::Request r;
      r.method = "GET";
      r.path = "/app/sb/balance?account=" + std::to_string(a);
      return r;
    }
  }
}

SbOutcome RunSmallBankChaos(uint64_t seed, uint64_t exec_threads) {
  SbOutcome out;
  apps::SmallBankApp app;
  ServiceHarness h;
  h.SetConfigTweak([exec_threads](node::NodeConfig* cfg) {
    cfg->exec_threads = exec_threads;
  });
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis(true, &app);
  if (n0 == nullptr) {
    out.failure = "genesis failed";
    return out;
  }
  node::Client* c = h.UserClient("alice");

  json::Object setup;
  setup["from"] = 0;
  setup["to"] = static_cast<int64_t>(kAccounts);
  setup["savings"] = 100;
  setup["checking"] = 100;
  auto created = c->Call(SbPost("/app/sb/create_accounts", std::move(setup)));
  if (!created.ok() || created->status != 200) {
    out.failure = "account setup failed";
    return out;
  }

  crypto::Drbg drbg("smallbank-chaos", seed);
  apps::ZipfianSampler zipf(kAccounts, kSkew);
  std::vector<std::string> responses;
  size_t sent = 0;
  size_t errors = 0;
  // Fire-and-forget in windows of kPipelineDepth so requests pipeline into
  // the node's inbox and form real exec batches.
  while (sent < kRequests) {
    size_t window = std::min<size_t>(kPipelineDepth, kRequests - sent);
    for (size_t i = 0; i < window; ++i) {
      c->SendRequest(DrawRequest(&drbg, zipf),
                     [&responses, &errors](Result<http::Response> resp) {
                       if (!resp.ok()) {
                         ++errors;
                         responses.push_back("transport-error");
                         return;
                       }
                       responses.push_back(std::to_string(resp->status) +
                                           " " + ToString(resp->body));
                     });
    }
    sent += window;
    if (!h.env().RunUntil([&] { return responses.size() >= sent; }, 5000)) {
      out.failure = "window timed out";
      return out;
    }
  }
  if (errors != 0) {
    out.failure = "transport errors";
    return out;
  }

  if (!h.env().RunUntil(
          [&] { return n0->commit_seqno() >= n0->last_seqno(); }, 5000)) {
    out.failure = "commit did not converge";
    return out;
  }
  for (const std::string& line : responses) {
    out.trace += line;
    out.trace += '\n';
  }
  out.final_state = ServiceHarness::StateDigest(n0);
  return out;
}

class SmallBankChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmallBankChaosTest, ExecThreadsPreserveDeterminismAcrossSeedBatch) {
  for (uint64_t i = 0; i < 10; ++i) {
    uint64_t seed = GetParam() * 10 + i;
    SbOutcome inline_exec = RunSmallBankChaos(seed, /*exec_threads=*/0);
    SbOutcome pooled_exec = RunSmallBankChaos(seed, /*exec_threads=*/4);
    ASSERT_EQ(inline_exec.failure, pooled_exec.failure) << "seed " << seed;
    ASSERT_TRUE(inline_exec.failure.empty())
        << "seed " << seed << ": " << inline_exec.failure;
    EXPECT_EQ(inline_exec.trace, pooled_exec.trace) << "seed " << seed;
    EXPECT_EQ(inline_exec.final_state, pooled_exec.final_state)
        << "seed " << seed;
    ASSERT_FALSE(inline_exec.final_state.empty()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBatches, SmallBankChaosTest,
                         ::testing::Range<uint64_t>(0, 20));

// A pooled run also replays bit-for-bit against itself: worker wall-clock
// finish order varies, but retirement is by submission order.
TEST(SmallBankChaosDeterminism, PooledRunReplaysBitForBit) {
  SbOutcome a = RunSmallBankChaos(7, /*exec_threads=*/4);
  SbOutcome b = RunSmallBankChaos(7, /*exec_threads=*/4);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.final_state, b.final_state);
}

}  // namespace
}  // namespace ccf::testing
