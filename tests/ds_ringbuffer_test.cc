#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "crypto/hmac.h"
#include "ds/ringbuffer.h"

namespace ccf::ds {
namespace {

TEST(RingBuffer, EmptyInitially) {
  RingBuffer rb(256);
  EXPECT_TRUE(rb.Empty());
  uint32_t type;
  Bytes payload;
  EXPECT_FALSE(rb.TryRead(&type, &payload));
}

TEST(RingBuffer, WriteReadSingleMessage) {
  RingBuffer rb(256);
  ASSERT_TRUE(rb.TryWrite(7, ToBytes("hello")));
  EXPECT_FALSE(rb.Empty());
  uint32_t type;
  Bytes payload;
  ASSERT_TRUE(rb.TryRead(&type, &payload));
  EXPECT_EQ(type, 7u);
  EXPECT_EQ(ToString(payload), "hello");
  EXPECT_TRUE(rb.Empty());
}

TEST(RingBuffer, EmptyPayload) {
  RingBuffer rb(256);
  ASSERT_TRUE(rb.TryWrite(3, {}));
  uint32_t type;
  Bytes payload;
  ASSERT_TRUE(rb.TryRead(&type, &payload));
  EXPECT_EQ(type, 3u);
  EXPECT_TRUE(payload.empty());
}

TEST(RingBuffer, FifoOrder) {
  RingBuffer rb(1024);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(rb.TryWrite(i, ToBytes("msg" + std::to_string(i))));
  }
  for (int i = 0; i < 10; ++i) {
    uint32_t type;
    Bytes payload;
    ASSERT_TRUE(rb.TryRead(&type, &payload));
    EXPECT_EQ(type, static_cast<uint32_t>(i));
    EXPECT_EQ(ToString(payload), "msg" + std::to_string(i));
  }
}

TEST(RingBuffer, FillsUpAndReportsFull) {
  RingBuffer rb(64);
  int written = 0;
  while (rb.TryWrite(1, ToBytes("12345678"))) ++written;
  EXPECT_GT(written, 0);
  // Draining one message frees space again.
  uint32_t type;
  Bytes payload;
  ASSERT_TRUE(rb.TryRead(&type, &payload));
  EXPECT_TRUE(rb.TryWrite(1, ToBytes("12345678")));
}

TEST(RingBuffer, OversizedMessageRejected) {
  RingBuffer rb(64);
  Bytes big(1000, 0xAA);
  EXPECT_FALSE(rb.TryWrite(1, big));
  // Still usable afterwards.
  EXPECT_TRUE(rb.TryWrite(1, ToBytes("ok")));
}

TEST(RingBuffer, WrapAround) {
  RingBuffer rb(128);
  // Cycle many messages through a small buffer to cross the wrap point
  // repeatedly, with varying sizes.
  crypto::Drbg drbg("rb-wrap", 0);
  for (int i = 0; i < 1000; ++i) {
    size_t len = drbg.Uniform(40);
    Bytes msg = drbg.Generate(len);
    ASSERT_TRUE(rb.TryWrite(i % 1000, msg)) << i;
    uint32_t type;
    Bytes payload;
    ASSERT_TRUE(rb.TryRead(&type, &payload)) << i;
    EXPECT_EQ(type, static_cast<uint32_t>(i % 1000));
    EXPECT_EQ(payload, msg);
  }
  EXPECT_TRUE(rb.Empty());
}

TEST(RingBuffer, BurstsWithPartialDrain) {
  RingBuffer rb(512);
  crypto::Drbg drbg("rb-burst", 0);
  std::vector<Bytes> inflight;
  size_t read_idx = 0;
  for (int round = 0; round < 200; ++round) {
    // Write a burst until full or 5 messages.
    for (int i = 0; i < 5; ++i) {
      Bytes msg = drbg.Generate(drbg.Uniform(60));
      if (rb.TryWrite(9, msg)) inflight.push_back(msg);
    }
    // Drain a couple.
    for (int i = 0; i < 3; ++i) {
      uint32_t type;
      Bytes payload;
      if (rb.TryRead(&type, &payload)) {
        ASSERT_LT(read_idx, inflight.size());
        EXPECT_EQ(payload, inflight[read_idx]);
        ++read_idx;
      }
    }
  }
  // Drain the rest.
  uint32_t type;
  Bytes payload;
  while (rb.TryRead(&type, &payload)) {
    ASSERT_LT(read_idx, inflight.size());
    EXPECT_EQ(payload, inflight[read_idx]);
    ++read_idx;
  }
  EXPECT_EQ(read_idx, inflight.size());
}

TEST(RingBuffer, MultiProducerSingleConsumer) {
  RingBuffer rb(1 << 14);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<int> total_written{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&rb, &total_written, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Payload encodes (producer, seq) for validation.
        Bytes msg(8);
        msg[0] = static_cast<uint8_t>(p);
        msg[1] = static_cast<uint8_t>(i);
        msg[2] = static_cast<uint8_t>(i >> 8);
        while (!rb.TryWrite(static_cast<uint32_t>(p + 1), msg)) {
          std::this_thread::yield();
        }
        total_written.fetch_add(1);
      }
    });
  }

  // Consumer validates per-producer FIFO ordering.
  int consumed = 0;
  int next_seq[kProducers] = {0, 0, 0, 0};
  while (consumed < kProducers * kPerProducer) {
    uint32_t type;
    Bytes payload;
    if (!rb.TryRead(&type, &payload)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(payload.size(), 8u);
    int p = payload[0];
    int seq = payload[1] | (payload[2] << 8);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(type, static_cast<uint32_t>(p + 1));
    EXPECT_EQ(seq, next_seq[p]);
    next_seq[p] = seq + 1;
    ++consumed;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(consumed, kProducers * kPerProducer);
  EXPECT_TRUE(rb.Empty());
}

// Stress case tuned for TSan runs (-DCCF_SANITIZE=thread): a deliberately
// tiny buffer maximizes producer contention, wrap-arounds and full/empty
// transitions, with variable payload sizes and a concurrent Empty() poller
// probing the reader-visible state while writes race.
TEST(RingBuffer, MultiProducerContendedSmallBufferStress) {
  RingBuffer rb(512);
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 2000;

  std::atomic<bool> done{false};
  std::thread poller([&rb, &done] {
    while (!done.load()) {
      (void)rb.Empty();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&rb, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        // Variable length exercises wrap handling; prefix encodes
        // (producer, seq) for validation.
        Bytes msg(3 + (i % 29));
        msg[0] = static_cast<uint8_t>(p);
        msg[1] = static_cast<uint8_t>(i);
        msg[2] = static_cast<uint8_t>(i >> 8);
        while (!rb.TryWrite(static_cast<uint32_t>(p), msg)) {
          std::this_thread::yield();
        }
      }
    });
  }

  int consumed = 0;
  int next_seq[kProducers] = {};
  while (consumed < kProducers * kPerProducer) {
    uint32_t type;
    Bytes payload;
    if (!rb.TryRead(&type, &payload)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_GE(payload.size(), 3u);
    int p = payload[0];
    int seq = payload[1] | (payload[2] << 8);
    ASSERT_GE(p, 0);
    ASSERT_LT(p, kProducers);
    ASSERT_EQ(type, static_cast<uint32_t>(p));
    ASSERT_EQ(payload.size(), 3u + (seq % 29));
    EXPECT_EQ(seq, next_seq[p]);
    next_seq[p] = seq + 1;
    ++consumed;
  }
  for (auto& t : producers) t.join();
  done.store(true);
  poller.join();
  EXPECT_EQ(consumed, kProducers * kPerProducer);
  EXPECT_TRUE(rb.Empty());
}

}  // namespace
}  // namespace ccf::ds
