// Boots a single-node simulated service running the full application set
// (logging + banking + SmallBank via the AppRegistry), fetches
// GET /app/api, and prints the OpenAPI document to stdout.
//
// scripts/openapi_check.py runs this twice to assert the document is
// valid, covers every application endpoint, and is byte-stable; it is
// also handy interactively:
//
//   $ ./openapi_dump | python3 -m json.tool

#include <cstdio>

#include "apps/app.h"
#include "apps/banking.h"
#include "apps/logging.h"
#include "apps/smallbank.h"
#include "node/client.h"
#include "node/node.h"

using namespace ccf;

int main() {
  sim::Environment env;

  std::vector<node::MemberIdentity> members;
  std::vector<crypto::KeyPair> keys;
  for (int i = 0; i < 3; ++i) {
    std::string id = "member" + std::to_string(i);
    keys.push_back(
        crypto::KeyPair::FromSeed(ToBytes("member-key-" + std::to_string(i))));
    crypto::Certificate cert = crypto::IssueCertificate(
        id, "member", keys.back().public_key(), keys.back(), "");
    members.push_back({id, cert.Serialize(), keys.back().public_key()});
  }

  node::ServiceInit init;
  init.members = members;
  init.open_immediately = true;

  apps::LoggingApp logging;
  apps::BankingApp banking;
  apps::SmallBankApp smallbank;
  apps::AppRegistry registry;
  registry.Add(&logging).Add(&banking).Add(&smallbank);

  node::NodeConfig config;
  config.node_id = "n0";
  auto n0 = node::Node::CreateGenesis(config, init, &registry, &env);
  env.Step(10);

  node::Client client("openapi-client", &env, n0->service_identity());
  client.Connect("n0");
  auto resp = client.Get("/app/api");
  if (!resp.ok() || resp->status != 200) {
    std::fprintf(stderr, "GET /app/api failed: %s status=%d\n",
                 resp.ok() ? "" : resp.status().ToString().c_str(),
                 resp.ok() ? resp->status : -1);
    return 1;
  }
  std::fwrite(resp->body.data(), 1, resp->body.size(), stdout);
  std::printf("\n");
  return 0;
}
