#!/usr/bin/env python3
"""Compare two benchmark JSON files from the same bench binary.

Understands BENCH_signatures.json (bench_fig8_signatures),
BENCH_historical.json (bench_historical), BENCH_observe.json
(bench_observe), BENCH_snapshots.json (bench_snapshots),
BENCH_exec.json (bench_table5_modes exec-worker sweep),
BENCH_net.json (bench_net live closed-loop load) and
BENCH_smallbank.json (bench_smallbank SmallBank sweep); the format is
detected from the file contents.

Usage:
    scripts/bench_diff.py OLD.json NEW.json [--threshold PCT]

Prints per-metric deltas, flagging regressions beyond the threshold
(default 10%). Exit code is 1 when any flagged metric regressed, so it can
gate CI. A missing baseline file is not an error (exit 0 with a notice):
the first run of a new bench has nothing to compare against. Metrics
present on only one side are reported and skipped, never crashed on.

Stdlib only.
"""

import argparse
import json
import sys


def load(path, role):
    try:
        with open(path) as f:
            return json.load(f)
    except FileNotFoundError:
        print(f"note: {role} file {path} does not exist; "
              "nothing to compare (not an error on a first run)")
        return None
    except json.JSONDecodeError as e:
        print(f"note: {role} file {path} is not valid JSON ({e}); "
              "skipping comparison")
        return None


def fmt_delta(old, new):
    if old == 0:
        return "   n/a"
    pct = 100.0 * (new - old) / old
    return f"{pct:+6.1f}%"


def key_of(row):
    return (row.get("worker_threads"), row.get("worker_async"),
            row.get("interval"))


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("old")
    ap.add_argument("new")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="flag regressions beyond this percentage")
    args = ap.parse_args()

    old, new = load(args.old, "baseline"), load(args.new, "new")
    if old is None or new is None:
        return 0
    regressions = []

    def check(name, old_v, new_v, lower_is_better):
        if old_v is None or new_v is None:
            side = "new run" if old_v is None else "baseline"
            print(f"  {name:<44} (only in {side}; skipped)")
            return
        delta = fmt_delta(old_v, new_v)
        worse = (new_v > old_v) if lower_is_better else (new_v < old_v)
        flag = ""
        if old_v > 0 and worse and \
                abs(new_v - old_v) / old_v * 100.0 > args.threshold:
            flag = "  <-- regression"
            regressions.append(name)
        print(f"  {name:<44} {old_v:>12.2f} {new_v:>12.2f} {delta}{flag}")

    if old.get("smoke") != new.get("smoke"):
        print("WARNING: comparing a smoke run against a full run; "
              "deltas are not meaningful as absolutes")

    # BENCH_historical.json (bench_historical): flat sections of scalars.
    if "cold" in old or "cold" in new:
        print(f"{'historical queries':<46} {'old':>12} {'new':>12}")
        sections = (
            ("cold", (("wall_ms", True), ("verify_per_s", False),
                      ("fetch_round_trips", True))),
            ("warm", (("wall_ms", True), ("speedup_vs_cold", False))),
            ("churn", (("wall_ms", True), ("fetches", True),
                       ("evictions", True))),
        )
        for section, metrics in sections:
            old_s, new_s = old.get(section, {}), new.get(section, {})
            for metric, lower_is_better in metrics:
                if metric not in old_s and metric not in new_s:
                    continue
                check(f"{section} {metric}", old_s.get(metric),
                      new_s.get(metric), lower_is_better)
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed beyond "
                  f"{args.threshold:.0f}%:")
            for r in regressions:
                print(f"  - {r}")
            return 1
        print("\nno regressions beyond threshold")
        return 0

    # BENCH_snapshots.json (bench_snapshots): per-mode row lists keyed by
    # ledger length.
    if "join" in old or "join" in new:
        print(f"{'join time (s; lower is better)':<46} "
              f"{'old':>12} {'new':>12}")
        old_j, new_j = old.get("join", {}), new.get("join", {})
        for mode in ("snapshot", "replay"):
            old_rows = {r.get("ledger_entries"): r
                        for r in old_j.get(mode, [])}
            for row in new_j.get(mode, []):
                n = row.get("ledger_entries")
                prev = old_rows.get(n)
                if prev is None:
                    print(f"  (new config: {mode} ledger={n})")
                    continue
                label = f"{mode} ledger={n}"
                check(f"{label} wall_seconds", prev.get("wall_seconds"),
                      row.get("wall_seconds"), lower_is_better=True)
                check(f"{label} entries_replayed",
                      prev.get("entries_replayed"),
                      row.get("entries_replayed"), lower_is_better=True)
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed beyond "
                  f"{args.threshold:.0f}%:")
            for r in regressions:
                print(f"  - {r}")
            return 1
        print("\nno regressions beyond threshold")
        return 0

    # BENCH_observe.json (bench_observe): flat sections of scalars.
    if "hotpath" in old or "hotpath" in new:
        print(f"{'observability subsystem':<46} {'old':>12} {'new':>12}")
        sections = (
            ("hotpath", (("counter_ns", True), ("gauge_ns", True),
                         ("histogram_ns", True))),
            ("service", (("tx_per_s", False), ("rpc_p50_us", True),
                         ("rpc_p99_us", True))),
            ("exposition", (("to_json_ms", True),
                            ("to_prometheus_ms", True))),
        )
        for section, metrics in sections:
            old_s, new_s = old.get(section, {}), new.get(section, {})
            for metric, lower_is_better in metrics:
                if metric not in old_s and metric not in new_s:
                    continue
                check(f"{section} {metric}", old_s.get(metric),
                      new_s.get(metric), lower_is_better)
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed beyond "
                  f"{args.threshold:.0f}%:")
            for r in regressions:
                print(f"  - {r}")
            return 1
        print("\nno regressions beyond threshold")
        return 0

    # BENCH_net.json (bench_net): closed-loop live-cluster rows keyed by
    # (connections, pipeline). Throughput is higher-is-better; latency
    # percentiles are lower-is-better.
    if "net" in old or "net" in new:
        print(f"{'live closed-loop load':<46} {'old':>12} {'new':>12}")
        old_rows = {(r.get("connections"), r.get("pipeline")): r
                    for r in old.get("net", [])}
        for row in new.get("net", []):
            k = (row.get("connections"), row.get("pipeline"))
            prev = old_rows.get(k)
            if prev is None:
                print(f"  (new config: conns={k[0]} pipeline={k[1]})")
                continue
            label = f"conns={k[0]} pipeline={k[1]}"
            check(f"{label} tx_per_s", prev.get("tx_per_s"),
                  row.get("tx_per_s"), lower_is_better=False)
            check(f"{label} p50_us", prev.get("p50_us"),
                  row.get("p50_us"), lower_is_better=True)
            check(f"{label} p99_us", prev.get("p99_us"),
                  row.get("p99_us"), lower_is_better=True)
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed beyond "
                  f"{args.threshold:.0f}%:")
            for r in regressions:
                print(f"  - {r}")
            return 1
        print("\nno regressions beyond threshold")
        return 0

    # BENCH_smallbank.json (bench_smallbank): rows keyed by
    # (exec_threads, skew). Throughput is higher-is-better; the conflict
    # and abort rates are workload-determined, so they are printed for
    # context, not gated.
    if "smallbank" in old or "smallbank" in new:
        print(f"{'SmallBank sweep':<46} {'old':>12} {'new':>12}")
        old_rows = {(r.get("exec_threads"), r.get("skew")): r
                    for r in old.get("smallbank", [])}
        for row in new.get("smallbank", []):
            k = (row.get("exec_threads"), row.get("skew"))
            prev = old_rows.get(k)
            if prev is None:
                print(f"  (new config: exec_threads={k[0]} skew={k[1]})")
                continue
            label = f"exec_threads={k[0]} skew={k[1]}"
            check(f"{label} tx_per_s", prev.get("tx_per_s"),
                  row.get("tx_per_s"), lower_is_better=False)
            for rate in ("conflict_rate", "abort_rate"):
                old_r, new_r = prev.get(rate), row.get(rate)
                if old_r is not None or new_r is not None:
                    print(f"  {label + ' ' + rate + ' (info)':<44} "
                          f"{old_r if old_r is not None else float('nan'):>12.3f} "
                          f"{new_r if new_r is not None else float('nan'):>12.3f}")
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed beyond "
                  f"{args.threshold:.0f}%:")
            for r in regressions:
                print(f"  - {r}")
            return 1
        print("\nno regressions beyond threshold")
        return 0

    # BENCH_exec.json (bench_table5_modes exec-worker sweep): rows keyed
    # by exec_threads. Throughputs are higher-is-better; the conflict rate
    # is workload-determined, so it is printed for context, not gated.
    if "exec" in old or "exec" in new:
        print(f"{'exec-worker sweep':<46} {'old':>12} {'new':>12}")
        old_rows = {r.get("exec_threads"): r for r in old.get("exec", [])}
        for row in new.get("exec", []):
            w = row.get("exec_threads")
            prev = old_rows.get(w)
            if prev is None:
                print(f"  (new config: exec_threads={w})")
                continue
            label = f"exec_threads={w}"
            check(f"{label} read_tx_per_s", prev.get("read_tx_per_s"),
                  row.get("read_tx_per_s"), lower_is_better=False)
            check(f"{label} mixed_tx_per_s", prev.get("mixed_tx_per_s"),
                  row.get("mixed_tx_per_s"), lower_is_better=False)
            old_cr = prev.get("conflict_rate")
            new_cr = row.get("conflict_rate")
            if old_cr is not None or new_cr is not None:
                print(f"  {label + ' conflict_rate (info)':<44} "
                      f"{old_cr if old_cr is not None else float('nan'):>12.3f} "
                      f"{new_cr if new_cr is not None else float('nan'):>12.3f}")
        if regressions:
            print(f"\n{len(regressions)} metric(s) regressed beyond "
                  f"{args.threshold:.0f}%:")
            for r in regressions:
                print(f"  - {r}")
            return 1
        print("\nno regressions beyond threshold")
        return 0

    print(f"{'latency (us; lower is better)':<46} {'old':>12} {'new':>12}")
    old_lat = {key_of(r): r for r in old.get("latency", [])}
    for row in new.get("latency", []):
        prev = old_lat.get(key_of(row))
        if prev is None:
            print(f"  (new config: {row.get('label')})")
            continue
        label = row.get("label", "?")
        for metric in ("p50_us", "p99_us", "mean_spike_us", "spike_ratio"):
            if metric not in prev and metric not in row:
                continue
            check(f"{label} {metric}", prev.get(metric),
                  row.get(metric), lower_is_better=True)

    print(f"\n{'throughput (tx/s; higher is better)':<46} "
          f"{'old':>12} {'new':>12}")
    old_tput = {key_of(r): r for r in old.get("throughput", [])}
    for row in new.get("throughput", []):
        prev = old_tput.get(key_of(row))
        if prev is None:
            continue
        name = (f"workers={row.get('worker_threads')}"
                f"{'+async' if row.get('worker_async') else ''} "
                f"interval={row.get('interval')}")
        check(name, prev.get("tx_per_s", 0), row.get("tx_per_s", 0),
              lower_is_better=False)

    print(f"\n{'audit replay':<46} {'old':>12} {'new':>12}")
    old_a, new_a = old.get("audit_replay", {}), new.get("audit_replay", {})
    if old_a and new_a:
        check("serial_ms", old_a.get("serial_ms", 0),
              new_a.get("serial_ms", 0), lower_is_better=True)
        check("batch_ms", old_a.get("batch_ms", 0),
              new_a.get("batch_ms", 0), lower_is_better=True)
        check("speedup", old_a.get("speedup", 0),
              new_a.get("speedup", 0), lower_is_better=False)

    if regressions:
        print(f"\n{len(regressions)} metric(s) regressed beyond "
              f"{args.threshold:.0f}%:")
        for r in regressions:
            print(f"  - {r}")
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
