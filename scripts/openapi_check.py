#!/usr/bin/env python3
"""Validates the OpenAPI document served by a CCF node at GET /app/api.

Usage: openapi_check.py <path-to-openapi_dump-binary>

Boots the simulated service twice via the openapi_dump tool (which runs
logging + banking + SmallBank through the application registry and prints
the /app/api response body) and checks that the document:

  1. is valid JSON declaring OpenAPI 3.0.x,
  2. contains every application endpoint the three apps register,
  3. declares request bodies for schema'd writes and the shared Error
     component that every operation's default response references,
  4. is byte-identical across two independent service boots.

Stdlib only; exit code 0 on success, 1 with a report on failure.
"""

import json
import subprocess
import sys

# method, path -- every native /app endpoint the three apps register.
EXPECTED_ENDPOINTS = [
    ("post", "/app/log"),
    ("get", "/app/log"),
    ("post", "/app/log_public"),
    ("get", "/app/log_public"),
    ("post", "/app/rmw"),
    ("get", "/app/count"),
    ("get", "/app/hashread"),
    ("get", "/app/log/historical"),
    ("get", "/app/log/historical/range"),
    ("post", "/app/open_account"),
    ("post", "/app/credit"),
    ("post", "/app/debit"),
    ("post", "/app/transfer"),
    ("post", "/app/apply_interest"),
    ("get", "/app/balance"),
    ("get", "/app/audit"),
    ("get", "/app/statement"),
    ("post", "/app/sb/create_accounts"),
    ("post", "/app/sb/transact_savings"),
    ("post", "/app/sb/deposit_checking"),
    ("post", "/app/sb/send_payment"),
    ("post", "/app/sb/write_check"),
    ("post", "/app/sb/amalgamate"),
    ("get", "/app/sb/balance"),
]

# Writes that declare request schemas must document their bodies.
SCHEMA_D_WRITES = [
    ("post", "/app/log"),
    ("post", "/app/transfer"),
    ("post", "/app/sb/send_payment"),
]


def fetch(binary):
    proc = subprocess.run(
        [binary], capture_output=True, text=True, timeout=120
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"{binary} exited {proc.returncode}: {proc.stderr.strip()}"
        )
    return proc.stdout.strip()


def check_document(doc_text, errors):
    try:
        doc = json.loads(doc_text)
    except json.JSONDecodeError as e:
        errors.append(f"response body is not valid JSON: {e}")
        return None

    version = doc.get("openapi", "")
    if not version.startswith("3.0"):
        errors.append(f"openapi version is {version!r}, expected 3.0.x")
    if not doc.get("info", {}).get("title"):
        errors.append("info.title missing or empty")

    paths = doc.get("paths", {})
    for method, path in EXPECTED_ENDPOINTS:
        if path not in paths:
            errors.append(f"missing path {path}")
        elif method not in paths[path]:
            errors.append(f"missing operation {method.upper()} {path}")

    for method, path in SCHEMA_D_WRITES:
        op = paths.get(path, {}).get(method, {})
        schema = (
            op.get("requestBody", {})
            .get("content", {})
            .get("application/json", {})
            .get("schema")
        )
        if not schema:
            errors.append(
                f"{method.upper()} {path} lacks a request body schema"
            )

    if "Error" not in doc.get("components", {}).get("schemas", {}):
        errors.append("components.schemas.Error missing")
    else:
        for path, ops in paths.items():
            for method, op in ops.items():
                ref = (
                    op.get("responses", {})
                    .get("default", {})
                    .get("content", {})
                    .get("application/json", {})
                    .get("schema", {})
                    .get("$ref")
                )
                if ref != "#/components/schemas/Error":
                    errors.append(
                        f"{method.upper()} {path} default response does "
                        f"not reference the Error component"
                    )
    return doc


def main():
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 1
    binary = sys.argv[1]

    errors = []
    first = fetch(binary)
    doc = check_document(first, errors)

    second = fetch(binary)
    if first != second:
        errors.append(
            "document is not byte-stable across two service boots "
            f"({len(first)} vs {len(second)} bytes)"
        )

    if errors:
        for e in errors:
            print(f"openapi_check: FAIL: {e}", file=sys.stderr)
        return 1

    n_ops = sum(len(ops) for ops in doc.get("paths", {}).values())
    print(
        f"openapi_check: OK ({n_ops} operations, "
        f"{len(doc.get('paths', {}))} paths, byte-stable)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
