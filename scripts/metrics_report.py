#!/usr/bin/env python3
"""Pretty-print CCF metrics JSON.

Accepts either shape and detects which it was given:
  - a node snapshot from GET /node/metrics
    ({"node_id": ..., "metrics": {counters, gauges, histograms, series}})
  - a sim::MetricsAggregator end-of-run report
    ({"env": ..., "nodes": {id: registry}, "watched": {...}})

Usage:
    scripts/metrics_report.py [FILE]          # default: stdin
    scripts/metrics_report.py --filter rpc.   # only metrics containing a substring

Stdlib only.
"""

import argparse
import json
import sys

SPARK_CHARS = " .:-=+*#%@"


def sparkline(values):
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = hi - lo
    if span == 0:
        return SPARK_CHARS[1] * len(values)
    idx = [int((v - lo) / span * (len(SPARK_CHARS) - 1)) for v in values]
    return "".join(SPARK_CHARS[i] for i in idx)


def match(name, needle):
    return needle is None or needle in name


def print_registry(reg, needle, indent=""):
    counters = reg.get("counters", {})
    if any(match(n, needle) for n in counters):
        print(f"{indent}counters:")
        for name in sorted(counters):
            if not match(name, needle):
                continue
            print(f"{indent}  {name:<52} {counters[name]:>14,}")

    gauges = reg.get("gauges", {})
    if any(match(n, needle) for n in gauges):
        print(f"{indent}gauges:{'':<48} {'value':>14} {'max':>14}")
        for name in sorted(gauges):
            if not match(name, needle):
                continue
            g = gauges[name]
            print(f"{indent}  {name:<52} {g.get('value', 0):>14,} "
                  f"{g.get('max', 0):>14,}")

    hists = reg.get("histograms", {})
    if any(match(n, needle) for n in hists):
        print(f"{indent}histograms:{'':<30} {'count':>10} {'p50':>9} "
              f"{'p90':>9} {'p99':>9} {'max':>9}")
        for name in sorted(hists):
            if not match(name, needle):
                continue
            h = hists[name]
            print(f"{indent}  {name:<39} {h.get('count', 0):>10,} "
                  f"{h.get('p50', 0):>9,} {h.get('p90', 0):>9,} "
                  f"{h.get('p99', 0):>9,} {h.get('max', 0):>9,}")

    series = reg.get("series", {})
    for name in sorted(series):
        if not match(name, needle):
            continue
        s = series[name]
        points = s.get("points", [])
        values = [v for _, v in points]
        window = ""
        if points:
            window = f"t=[{points[0][0]}..{points[-1][0]}]ms "
        print(f"{indent}series {name}: {s.get('total', 0)} samples "
              f"(kept {len(points)}/{s.get('capacity', 0)}) {window}"
              f"|{sparkline(values)}|")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("file", nargs="?", help="metrics JSON (default: stdin)")
    ap.add_argument("--filter", dest="needle", default=None,
                    help="only show metrics whose name contains this")
    args = ap.parse_args()

    try:
        if args.file:
            with open(args.file) as f:
                doc = json.load(f)
        else:
            doc = json.load(sys.stdin)
    except (FileNotFoundError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    if "nodes" in doc:  # aggregator end-of-run report
        env = doc.get("env", {})
        if env:
            print(f"run: {env.get('duration_ms', 0):,} virtual ms, "
                  f"{env.get('messages_sent', 0):,} msgs sent, "
                  f"{env.get('messages_delivered', 0):,} delivered, "
                  f"{env.get('messages_dropped', 0):,} dropped")
        for node_id in sorted(doc.get("nodes", {})):
            print(f"\n== node {node_id} ==")
            print_registry(doc["nodes"][node_id], args.needle, indent="  ")
        watched = doc.get("watched", {})
        for node_id in sorted(watched):
            for metric in sorted(watched[node_id]):
                s = watched[node_id][metric]
                points = s.get("points", [])
                values = [v for _, v in points]
                print(f"\nwatched {node_id}/{metric}: "
                      f"{s.get('total', 0)} samples |{sparkline(values)}|")
                if values:
                    print(f"  last={values[-1]:,} min={min(values):,} "
                          f"max={max(values):,}")
    elif "metrics" in doc:  # GET /node/metrics snapshot
        print(f"node {doc.get('node_id', '?')}")
        print_registry(doc["metrics"], args.needle)
    else:  # bare registry JSON
        print_registry(doc, args.needle)
    return 0


if __name__ == "__main__":
    sys.exit(main())
