// Banking consortium example (paper §2's motivating scenario).
//
// The application itself lives in the apps library (apps/banking.h) and
// is registered through the application registry with per-endpoint
// request schemas; this example only *drives* it:
//   - credit / debit / transfer endpoints mutate private account balances,
//   - apply_interest updates every account of a bank atomically,
//   - audit is only available to the financial regulator (a designated
//     user) and reports account holders above a threshold,
//   - get_statement uses an application-defined indexing strategy
//     (paper §3.4) to serve historical per-account activity,
//   - a malformed request is rejected by schema validation with a
//     structured 400 before any transaction is opened.
//
//   $ ./banking

#include <cstdio>

#include "apps/banking.h"
#include "json/json.h"
#include "node/client.h"
#include "node/node.h"

using namespace ccf;

namespace {

json::Value Obj(std::initializer_list<std::pair<const char*, json::Value>> kv) {
  json::Object o;
  for (const auto& [k, v] : kv) o[k] = v;
  return json::Value(std::move(o));
}

}  // namespace

int main() {
  sim::Environment env;

  // Consortium: three banks govern the service.
  std::vector<node::MemberIdentity> members;
  std::vector<crypto::KeyPair> member_keys;
  for (int i = 0; i < 3; ++i) {
    std::string id = "bank" + std::to_string(i);
    member_keys.push_back(
        crypto::KeyPair::FromSeed(ToBytes("bank-key-" + std::to_string(i))));
    crypto::Certificate cert = crypto::IssueCertificate(
        id, "member", member_keys.back().public_key(), member_keys.back(), "");
    members.push_back({id, cert.Serialize(), member_keys.back().public_key()});
  }

  // Users: a teller and the financial regulator.
  crypto::KeyPair teller_key = crypto::KeyPair::FromSeed(ToBytes("teller"));
  crypto::Certificate teller_cert = crypto::IssueCertificate(
      "teller", "user", teller_key.public_key(), teller_key, "");
  crypto::KeyPair regulator_key =
      crypto::KeyPair::FromSeed(ToBytes("regulator"));
  crypto::Certificate regulator_cert = crypto::IssueCertificate(
      "regulator", "user", regulator_key.public_key(), regulator_key, "");

  node::ServiceInit init;
  init.members = members;
  init.open_immediately = true;
  init.initial_users.emplace_back("teller", teller_cert.Serialize());
  init.initial_users.emplace_back("regulator", regulator_cert.Serialize());

  apps::BankingApp app;
  node::NodeConfig config;
  config.node_id = "n0";
  config.signature_interval_txs = 4;
  config.signature_interval_ms = 20;
  auto n0 = node::Node::CreateGenesis(config, init, &app, &env);
  env.Step(10);
  std::printf("banking consortium service is open\n");

  node::Client teller("teller-client", &env, n0->service_identity(),
                      &teller_key, teller_cert);
  teller.Connect("n0");

  // Open accounts and move money.
  teller.PostJson("/app/open_account", Obj({{"account", json::Value("alice")},
                                            {"holder", json::Value("Alice")}}));
  teller.PostJson("/app/open_account", Obj({{"account", json::Value("bob")},
                                            {"holder", json::Value("Bob")}}));
  teller.PostJson("/app/credit", Obj({{"account", json::Value("alice")},
                                      {"amount", json::Value(10000)}}));
  teller.PostJson("/app/credit", Obj({{"account", json::Value("bob")},
                                      {"amount", json::Value(150)}}));
  auto transfer = teller.PostJson(
      "/app/transfer", Obj({{"from", json::Value("alice")},
                            {"to", json::Value("bob")},
                            {"amount", json::Value(2500)}}));
  std::printf("transfer: %s\n", ToString(transfer->body).c_str());

  // A mistyped body never reaches the handler: schema validation rejects
  // it with a structured 400 before a transaction is opened.
  auto bad = teller.PostJson(
      "/app/credit", Obj({{"account", json::Value("alice")},
                          {"amount", json::Value("lots")}}));
  std::printf("schema rejection: HTTP %d %s\n", bad->status,
              ToString(bad->body).c_str());

  // Overdraft is rejected and leaves no ledger entry.
  auto overdraft = teller.PostJson(
      "/app/debit", Obj({{"account", json::Value("bob")},
                         {"amount", json::Value(999999)}}));
  std::printf("overdraft attempt: HTTP %d %s\n", overdraft->status,
              ToString(overdraft->body).c_str());

  // Interest accrual across all accounts in one atomic transaction.
  teller.PostJson("/app/apply_interest",
                  Obj({{"basis_points", json::Value(250)}}));
  auto alice = teller.Get("/app/balance?account=alice");
  auto bob = teller.Get("/app/balance?account=bob");
  std::printf("after 2.5%% interest: alice=%s bob=%s\n",
              ToString(alice->body).c_str(), ToString(bob->body).c_str());

  // The teller cannot audit...
  auto denied = teller.Get("/app/audit?threshold=1000");
  std::printf("teller audit attempt: HTTP %d\n", denied->status);

  // ...but the regulator can (paper §2).
  node::Client regulator("regulator-client", &env, n0->service_identity(),
                         &regulator_key, regulator_cert);
  regulator.Connect("n0");
  auto audit = regulator.Get("/app/audit?threshold=1000");
  std::printf("regulator audit (>1000): %s\n", ToString(audit->body).c_str());

  // Historical statement via the indexing strategy (paper §3.4).
  env.RunUntil([&] { return n0->commit_seqno() >= n0->last_seqno(); }, 5000);
  auto statement = teller.Get("/app/statement?account=bob");
  std::printf("bob's statement (tx seqnos): %s\n",
              ToString(statement->body).c_str());

  std::printf("banking example complete.\n");
  return 0;
}
