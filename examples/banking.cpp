// Banking consortium example (paper §2's motivating scenario).
//
// A consortium of financial institutions runs a shared, confidential
// banking service:
//   - credit / debit / transfer endpoints mutate private account balances,
//   - apply_interest updates every account of a bank atomically,
//   - audit is only available to the financial regulator (a designated
//     user) and reports account holders above a threshold,
//   - get_statement uses an application-defined indexing strategy
//     (paper §3.4) to serve historical per-account activity.
//
//   $ ./banking

#include <cstdio>
#include <memory>
#include <mutex>

#include "json/json.h"
#include "node/client.h"
#include "node/node.h"

using namespace ccf;

namespace {

constexpr char kAccountsMap[] = "private:bank.accounts";  // id -> balance
constexpr char kOwnersMap[] = "private:bank.owners";      // id -> holder name

int64_t ReadBalance(kv::MapHandle* accounts, const std::string& id) {
  auto raw = accounts->GetStr(id);
  return raw.has_value() ? std::strtoll(raw->c_str(), nullptr, 10) : -1;
}

// Indexing strategy: per account, the list of transaction seqnos that
// touched it (the paper's get_statement example).
class AccountActivityIndex : public indexing::Strategy {
 public:
  const char* name() const override { return "AccountActivityIndex"; }

  void OnCommittedEntry(uint64_t view, uint64_t seqno,
                        const kv::WriteSet& writes) override {
    (void)view;
    auto it = writes.maps.find(kAccountsMap);
    if (it == writes.maps.end()) return;
    for (const auto& [key, value] : it->second) {
      activity_[ToString(key)].push_back(seqno);
    }
  }

  std::vector<uint64_t> Activity(const std::string& account) const {
    auto it = activity_.find(account);
    return it != activity_.end() ? it->second : std::vector<uint64_t>{};
  }

 private:
  std::map<std::string, std::vector<uint64_t>> activity_;
};

class BankingApp : public node::Application {
 public:
  explicit BankingApp(std::shared_ptr<AccountActivityIndex> index)
      : index_(std::move(index)) {}

  void RegisterEndpoints(rpc::EndpointRegistry* registry,
                         const node::NodeContext& node) override {
    (void)node;
    using rpc::AuthPolicy;
    using rpc::EndpointContext;

    registry->Install(
        "POST", "/app/open_account",
        {[](EndpointContext* ctx) {
           auto p = ctx->Params();
           std::string id = p->GetString("account");
           ctx->tx().Handle(kAccountsMap)->PutStr(id, "0");
           ctx->tx().Handle(kOwnersMap)->PutStr(id, p->GetString("holder"));
           ctx->SetJsonResponse(200, json::Value(json::Object{
                                         {"account", json::Value(id)}}));
         },
         AuthPolicy::kUserCert, false});

    auto adjust = [](EndpointContext* ctx, int sign) {
      auto p = ctx->Params();
      std::string id = p->GetString("account");
      int64_t amount = p->GetInt("amount");
      if (amount <= 0) {
        ctx->SetError(400, "amount must be positive");
        return;
      }
      kv::MapHandle* accounts = ctx->tx().Handle(kAccountsMap);
      int64_t balance = ReadBalance(accounts, id);
      if (balance < 0) {
        ctx->SetError(404, "no such account");
        return;
      }
      int64_t next = balance + sign * amount;
      if (next < 0) {
        // The paper's "insufficient funds" error.
        ctx->SetError(409, "insufficient funds");
        return;
      }
      accounts->PutStr(id, std::to_string(next));
      ctx->SetJsonResponse(
          200, json::Value(json::Object{{"account", json::Value(id)},
                                        {"balance", json::Value(next)}}));
    };
    registry->Install("POST", "/app/credit",
                      {[adjust](EndpointContext* ctx) { adjust(ctx, 1); },
                       AuthPolicy::kUserCert, false});
    registry->Install("POST", "/app/debit",
                      {[adjust](EndpointContext* ctx) { adjust(ctx, -1); },
                       AuthPolicy::kUserCert, false});

    registry->Install(
        "POST", "/app/transfer",
        {[](EndpointContext* ctx) {
           auto p = ctx->Params();
           std::string from = p->GetString("from");
           std::string to = p->GetString("to");
           int64_t amount = p->GetInt("amount");
           kv::MapHandle* accounts = ctx->tx().Handle(kAccountsMap);
           int64_t from_balance = ReadBalance(accounts, from);
           int64_t to_balance = ReadBalance(accounts, to);
           if (from_balance < 0 || to_balance < 0) {
             ctx->SetError(404, "no such account");
             return;
           }
           if (amount <= 0 || from_balance < amount) {
             ctx->SetError(409, "insufficient funds");
             return;
           }
           // Atomic: both writes land in one ledger transaction (§6.4).
           accounts->PutStr(from, std::to_string(from_balance - amount));
           accounts->PutStr(to, std::to_string(to_balance + amount));
           // Attach an application claim so the transfer is provable from
           // the receipt alone (paper §3.5).
           ctx->SetClaims(ToBytes("transfer " + from + "->" + to + " " +
                                  std::to_string(amount)));
           ctx->SetJsonResponse(200,
                                json::Value(json::Object{
                                    {"ok", json::Value(true)},
                                    {"from_balance",
                                     json::Value(from_balance - amount)}}));
         },
         AuthPolicy::kUserCert, false});

    registry->Install(
        "POST", "/app/apply_interest",
        {[](EndpointContext* ctx) {
           auto p = ctx->Params();
           int64_t basis_points = p->GetInt("basis_points");
           kv::MapHandle* accounts = ctx->tx().Handle(kAccountsMap);
           std::vector<std::pair<std::string, int64_t>> updates;
           accounts->Foreach([&](const Bytes& key, const Bytes& value) {
             int64_t balance =
                 std::strtoll(ToString(value).c_str(), nullptr, 10);
             updates.emplace_back(ToString(key),
                                  balance + balance * basis_points / 10000);
             return true;
           });
           for (const auto& [id, next] : updates) {
             accounts->PutStr(id, std::to_string(next));
           }
           ctx->SetJsonResponse(
               200, json::Value(json::Object{
                        {"accounts", json::Value(updates.size())}}));
         },
         AuthPolicy::kUserCert, false});

    registry->Install(
        "GET", "/app/balance",
        {[](EndpointContext* ctx) {
           std::string id = ctx->Param("account");
           int64_t balance =
               ReadBalance(ctx->tx().Handle(kAccountsMap), id);
           if (balance < 0) {
             ctx->SetError(404, "no such account");
             return;
           }
           ctx->SetJsonResponse(
               200, json::Value(json::Object{
                        {"account", json::Value(id)},
                        {"balance", json::Value(balance)}}));
         },
         AuthPolicy::kUserCert, true});

    // Audit: restricted to the regulator (paper §2: "available only to a
    // financial regulator, returns the names of account holders whose
    // total funds exceed some threshold").
    registry->Install(
        "GET", "/app/audit",
        {[](EndpointContext* ctx) {
           if (ctx->caller().id != "regulator") {
             ctx->SetError(403, "audit is restricted to the regulator");
             return;
           }
           int64_t threshold =
               static_cast<int64_t>(ctx->ParamU64("threshold"));
           kv::MapHandle* accounts = ctx->tx().Handle(kAccountsMap);
           kv::MapHandle* owners = ctx->tx().Handle(kOwnersMap);
           json::Array holders;
           accounts->Foreach([&](const Bytes& key, const Bytes& value) {
             int64_t balance =
                 std::strtoll(ToString(value).c_str(), nullptr, 10);
             if (balance > threshold) {
               auto holder = owners->GetStr(ToString(key));
               holders.emplace_back(holder.value_or("?"));
             }
             return true;
           });
           ctx->SetJsonResponse(200, json::Value(json::Object{
                                         {"holders", std::move(holders)}}));
         },
         AuthPolicy::kUserCert, true});

    // get_statement: serves the per-account activity from the indexer.
    auto index = index_;
    registry->Install(
        "GET", "/app/statement",
        {[index](EndpointContext* ctx) {
           std::string id = ctx->Param("account");
           json::Array seqnos;
           for (uint64_t s : index->Activity(id)) {
             seqnos.emplace_back(static_cast<int64_t>(s));
           }
           ctx->SetJsonResponse(
               200, json::Value(json::Object{
                        {"account", json::Value(id)},
                        {"transactions", std::move(seqnos)}}));
         },
         AuthPolicy::kUserCert, true});
  }

 private:
  std::shared_ptr<AccountActivityIndex> index_;
};

json::Value Obj(std::initializer_list<std::pair<const char*, json::Value>> kv) {
  json::Object o;
  for (const auto& [k, v] : kv) o[k] = v;
  return json::Value(std::move(o));
}

}  // namespace

int main() {
  sim::Environment env;

  // Consortium: three banks govern the service.
  std::vector<node::MemberIdentity> members;
  std::vector<crypto::KeyPair> member_keys;
  for (int i = 0; i < 3; ++i) {
    std::string id = "bank" + std::to_string(i);
    member_keys.push_back(
        crypto::KeyPair::FromSeed(ToBytes("bank-key-" + std::to_string(i))));
    crypto::Certificate cert = crypto::IssueCertificate(
        id, "member", member_keys.back().public_key(), member_keys.back(), "");
    members.push_back({id, cert.Serialize(), member_keys.back().public_key()});
  }

  // Users: a teller and the financial regulator.
  crypto::KeyPair teller_key = crypto::KeyPair::FromSeed(ToBytes("teller"));
  crypto::Certificate teller_cert = crypto::IssueCertificate(
      "teller", "user", teller_key.public_key(), teller_key, "");
  crypto::KeyPair regulator_key =
      crypto::KeyPair::FromSeed(ToBytes("regulator"));
  crypto::Certificate regulator_cert = crypto::IssueCertificate(
      "regulator", "user", regulator_key.public_key(), regulator_key, "");

  node::ServiceInit init;
  init.members = members;
  init.open_immediately = true;
  init.initial_users.emplace_back("teller", teller_cert.Serialize());
  init.initial_users.emplace_back("regulator", regulator_cert.Serialize());

  auto index = std::make_shared<AccountActivityIndex>();
  BankingApp app(index);
  node::NodeConfig config;
  config.node_id = "n0";
  config.signature_interval_txs = 4;
  config.signature_interval_ms = 20;
  auto n0 = node::Node::CreateGenesis(config, init, &app, &env);
  n0->InstallIndexingStrategy(index);
  env.Step(10);
  std::printf("banking consortium service is open\n");

  node::Client teller("teller-client", &env, n0->service_identity(),
                      &teller_key, teller_cert);
  teller.Connect("n0");

  // Open accounts and move money.
  teller.PostJson("/app/open_account", Obj({{"account", json::Value("alice")},
                                            {"holder", json::Value("Alice")}}));
  teller.PostJson("/app/open_account", Obj({{"account", json::Value("bob")},
                                            {"holder", json::Value("Bob")}}));
  teller.PostJson("/app/credit", Obj({{"account", json::Value("alice")},
                                      {"amount", json::Value(10000)}}));
  teller.PostJson("/app/credit", Obj({{"account", json::Value("bob")},
                                      {"amount", json::Value(150)}}));
  auto transfer = teller.PostJson(
      "/app/transfer", Obj({{"from", json::Value("alice")},
                            {"to", json::Value("bob")},
                            {"amount", json::Value(2500)}}));
  std::printf("transfer: %s\n", ToString(transfer->body).c_str());

  // Overdraft is rejected and leaves no ledger entry.
  auto overdraft = teller.PostJson(
      "/app/debit", Obj({{"account", json::Value("bob")},
                         {"amount", json::Value(999999)}}));
  std::printf("overdraft attempt: HTTP %d %s\n", overdraft->status,
              ToString(overdraft->body).c_str());

  // Interest accrual across all accounts in one atomic transaction.
  teller.PostJson("/app/apply_interest",
                  Obj({{"basis_points", json::Value(250)}}));
  auto alice = teller.Get("/app/balance?account=alice");
  auto bob = teller.Get("/app/balance?account=bob");
  std::printf("after 2.5%% interest: alice=%s bob=%s\n",
              ToString(alice->body).c_str(), ToString(bob->body).c_str());

  // The teller cannot audit...
  auto denied = teller.Get("/app/audit?threshold=1000");
  std::printf("teller audit attempt: HTTP %d\n", denied->status);

  // ...but the regulator can (paper §2).
  node::Client regulator("regulator-client", &env, n0->service_identity(),
                         &regulator_key, regulator_cert);
  regulator.Connect("n0");
  auto audit = regulator.Get("/app/audit?threshold=1000");
  std::printf("regulator audit (>1000): %s\n", ToString(audit->body).c_str());

  // Historical statement via the indexing strategy (paper §3.4).
  env.RunUntil([&] { return n0->commit_seqno() >= n0->last_seqno(); }, 5000);
  auto statement = teller.Get("/app/statement?account=bob");
  std::printf("bob's statement (tx seqnos): %s\n",
              ToString(statement->body).c_str());

  std::printf("banking example complete.\n");
  return 0;
}
