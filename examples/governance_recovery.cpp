// Multiparty governance and disaster recovery walkthrough (paper §5).
//
// Demonstrates, end to end:
//   1. a 2-node service governed by three mutually untrusted members,
//   2. opening the service via a transition_service_to_open proposal,
//   3. a code update via add_node_code + joining a node with the new code,
//   4. a constitution change (set_constitution) altering the voting rules,
//   5. catastrophe: all nodes lost; disaster recovery from the surviving
//      ledger files, member recovery shares, and reopening under a new,
//      detectable service identity (§5.2).
//
//   $ ./governance_recovery

#include <cstdio>
#include <filesystem>

#include "common/hex.h"
#include "json/json.h"
#include "gov/constitution.h"
#include "node/client.h"
#include "apps/logging.h"
#include "node/node.h"

using namespace ccf;

namespace {

struct Member {
  std::string id;
  crypto::KeyPair key;
  crypto::Certificate cert;
};

json::Value MakeProposal(
    std::initializer_list<std::pair<std::string, json::Object>> actions) {
  json::Array acts;
  for (const auto& [name, args] : actions) {
    json::Object act;
    act["name"] = name;
    act["args"] = args;
    acts.push_back(json::Value(std::move(act)));
  }
  json::Object proposal;
  proposal["actions"] = std::move(acts);
  json::Object body;
  body["proposal"] = std::move(proposal);
  return json::Value(std::move(body));
}

// Submits a proposal as members[0] and votes with members until accepted.
bool Propose(sim::Environment* env, node::Node* node,
             std::vector<Member>& members, const json::Value& body,
             int votes_needed) {
  node::Client proposer("gov-" + members[0].id + "-" +
                            std::to_string(env->now_ms()),
                        env, node->service_identity(), &members[0].key,
                        members[0].cert);
  proposer.Connect(node->id());
  auto resp = proposer.PostJsonSigned("/gov/propose", body);
  if (!resp.ok() || resp->status != 200) {
    std::fprintf(stderr, "propose failed: %s\n",
                 resp.ok() ? ToString(resp->body).c_str()
                           : resp.status().ToString().c_str());
    return false;
  }
  std::string pid = json::Parse(ToString(resp->body))->GetString("proposal_id");
  std::printf("  proposal %s submitted by %s\n", pid.c_str(),
              members[0].id.c_str());

  for (int i = 0; i < votes_needed; ++i) {
    node::Client voter("vote-" + members[i].id + "-" +
                           std::to_string(env->now_ms()),
                       env, node->service_identity(), &members[i].key,
                       members[i].cert);
    voter.Connect(node->id());
    json::Object ballot;
    ballot["proposal_id"] = pid;
    ballot["ballot"] = "function vote(proposal, proposer_id) { return true; }";
    auto vresp = voter.PostJsonSigned("/gov/vote",
                                      json::Value(std::move(ballot)));
    if (!vresp.ok() || vresp->status != 200) {
      std::fprintf(stderr, "  vote by %s failed\n", members[i].id.c_str());
      return false;
    }
    std::string state =
        json::Parse(ToString(vresp->body))->GetString("state");
    std::printf("  ballot by %s -> %s\n", members[i].id.c_str(),
                state.c_str());
    if (state == "Accepted") return true;
  }
  return false;
}

}  // namespace

int main() {
  sim::Environment env;
  apps::LoggingApp app;

  // --- The consortium -----------------------------------------------------
  std::vector<Member> members;
  for (int i = 0; i < 3; ++i) {
    std::string id = "m" + std::to_string(i);
    crypto::KeyPair key = crypto::KeyPair::FromSeed(ToBytes("gov-" + id));
    crypto::Certificate cert =
        crypto::IssueCertificate(id, "member", key.public_key(), key, "");
    members.push_back({id, std::move(key), std::move(cert)});
  }
  crypto::KeyPair user_key = crypto::KeyPair::FromSeed(ToBytes("clerk"));
  crypto::Certificate user_cert = crypto::IssueCertificate(
      "clerk", "user", user_key.public_key(), user_key, "");

  node::ServiceInit init;
  for (const Member& m : members) {
    init.members.push_back({m.id, m.cert.Serialize(), m.key.public_key()});
  }
  init.initial_users.emplace_back("clerk", user_cert.Serialize());
  init.open_immediately = false;  // governance must open the service

  auto config = [](const std::string& id) {
    node::NodeConfig cfg;
    cfg.node_id = id;
    cfg.raft.election_timeout_min_ms = 50;
    cfg.raft.election_timeout_max_ms = 100;
    cfg.raft.heartbeat_interval_ms = 10;
    cfg.signature_interval_txs = 5;
    cfg.signature_interval_ms = 20;
    return cfg;
  };

  // --- 1. Start the service ------------------------------------------------
  auto n0 = node::Node::CreateGenesis(config("n0"), init, &app, &env);
  env.Step(10);
  std::printf("[1] service started (status: %s)\n",
              gov::ServiceStatusName(n0->service_status()));

  // Users are rejected while the service is Opening.
  node::Client clerk("clerk-client", &env, n0->service_identity(), &user_key,
                     user_cert);
  clerk.Connect("n0");
  auto early = clerk.PostJson(
      "/app/log", json::Value(json::Object{{"id", json::Value(1)},
                                           {"msg", json::Value("early")}}));
  std::printf("    user request before opening: HTTP %d\n", early->status);

  // --- 2. Open via governance ----------------------------------------------
  std::printf("[2] members open the service\n");
  Propose(&env, n0.get(), members,
          MakeProposal({{"transition_service_to_open", {}}}), 2);
  env.Step(20);
  std::printf("    status now: %s\n",
              gov::ServiceStatusName(n0->service_status()));
  auto write = clerk.PostJson(
      "/app/log",
      json::Value(json::Object{{"id", json::Value(1)},
                               {"msg", json::Value("confidential memo")}}));
  std::printf("    user write after opening: HTTP %d\n", write->status);

  // --- 3. Code update + new node -------------------------------------------
  std::printf("[3] members allow code version v2 (Listing 1's "
              "add_node_code), then a v2 node joins\n");
  Propose(&env, n0.get(), members,
          MakeProposal({{"add_node_code",
                         {{"code_id", json::Value("ccf-code-v2")}}}}),
          2);
  node::NodeConfig v2 = config("n1");
  v2.code_id = "ccf-code-v2";
  auto n1 = node::Node::CreateJoiner(v2, n0->service_identity(), "n0", &app,
                                     &env);
  env.RunUntil([&] { return n1->has_joined(); }, 5000);
  std::printf("    n1 joined with code id ccf-code-v2: %s\n",
              n1->has_joined() ? "yes" : "no");
  Propose(&env, n0.get(), members,
          MakeProposal({{"transition_node_to_trusted",
                         {{"node_id", json::Value("n1")}}}}),
          2);
  env.RunUntil([&] { return n1->raft().InActiveConfig(); }, 5000);
  std::printf("    n1 is now a trusted replica (2-node service)\n");

  // --- 4. Constitution change ------------------------------------------------
  std::printf("[4] members amend the constitution (unanimity required "
              "from now on)\n");
  std::string unanimous = gov::DefaultConstitution();
  size_t pos = unanimous.find("votes_for * 2 > total");
  unanimous.replace(pos, std::string("votes_for * 2 > total").size(),
                    "votes_for == total");
  Propose(&env, n0.get(), members,
          MakeProposal({{"set_constitution",
                         {{"constitution", json::Value(unanimous)}}}}),
          2);
  // Under unanimity, 2 of 3 votes are no longer enough...
  bool two_votes = Propose(&env, n0.get(), members,
                           MakeProposal({{"add_node_code",
                                          {{"code_id",
                                            json::Value("v3-attempt-a")}}}}),
                           2);
  std::printf("    2/3 votes accepted under unanimity? %s\n",
              two_votes ? "yes (bug!)" : "no");
  bool three_votes = Propose(&env, n0.get(), members,
                             MakeProposal({{"add_node_code",
                                            {{"code_id",
                                              json::Value("v3-attempt-b")}}}}),
                             3);
  std::printf("    3/3 votes accepted under unanimity? %s\n",
              three_votes ? "yes" : "no (bug!)");

  // --- 5. Disaster + recovery -----------------------------------------------
  std::printf("[5] catastrophe: every node is lost; only n0's ledger "
              "files survive\n");
  env.RunUntil([&] { return n0->commit_seqno() >= n0->last_seqno(); }, 5000);
  std::string dir = std::filesystem::temp_directory_path() /
                    "ccf_example_recovery_ledger";
  n0->SaveLedgerToDir(dir);
  crypto::PublicKeyBytes old_identity = n0->service_identity();
  env.SetUp("n0", false);
  env.SetUp("n1", false);

  auto restored = ledger::LoadFromDir(dir);
  std::printf("    loaded %llu ledger entries from %s\n",
              static_cast<unsigned long long>(restored->last_seqno()),
              dir.c_str());
  auto r0 =
      node::Node::CreateRecovery(config("r0"), std::move(*restored), &app,
                                 &env);
  env.RunUntil(
      [&] {
        return r0->IsPrimary() &&
               r0->service_status() == gov::ServiceStatus::kRecovering;
      },
      8000);
  std::printf("    recovery node is primary; service identity changed: %s\n",
              r0->service_identity() != old_identity ? "yes (detectable)"
                                                     : "NO (bug!)");
  std::printf("    private data before shares: %s\n",
              r0->store().GetStr("private:app.messages", "1").has_value()
                  ? "readable (bug!)"
                  : "sealed");

  // Members decrypt and submit their recovery shares (threshold 2).
  int submitted = 0;
  for (int i = 0; i < 2; ++i) {
    auto share = r0->ExtractRecoveryShare(members[i].id, members[i].key);
    if (!share.ok()) {
      std::fprintf(stderr, "share extraction failed\n");
      return 1;
    }
    node::Client mc("share-" + members[i].id, &env, r0->service_identity(),
                    &members[i].key, members[i].cert);
    mc.Connect("r0");
    json::Object body;
    body["share"] = HexEncode(*share);
    auto resp = mc.PostJsonSigned("/gov/recovery_share",
                                  json::Value(std::move(body)));
    ++submitted;
    std::printf("    %s submitted their recovery share (%d/%d)\n",
                members[i].id.c_str(), submitted, 2);
  }
  env.Step(50);
  auto memo = r0->store().GetStr("private:app.messages", "1");
  std::printf("    private data after shares: %s\n",
              memo.has_value() ? ("\"" + *memo + "\"").c_str() : "still sealed");

  // Reopen under the new identity, bound to the previous one (unanimity
  // rules survived recovery because the constitution lives in the ledger).
  std::printf("    members reopen the recovered service (3/3 under the "
              "amended constitution)\n");
  Propose(&env, r0.get(), members,
          MakeProposal({{"transition_service_to_open",
                         {{"previous_identity",
                           json::Value(HexEncode(ByteSpan(
                               old_identity.data(), old_identity.size())))}}}}),
          3);
  env.Step(20);
  std::printf("    recovered service status: %s\n",
              gov::ServiceStatusName(r0->service_status()));

  std::filesystem::remove_all(dir);
  std::printf("governance & recovery example complete.\n");
  return 0;
}
