// Quickstart: the smallest complete CCF service.
//
// Starts a single-node service with one consortium member and one user,
// writes a message through the logging application, reads it back, checks
// the transaction status until it commits (paper §3.2, Figure 4), and
// fetches + verifies an offline receipt (paper §3.5).
//
//   $ ./quickstart

#include <cstdio>

#include "common/hex.h"
#include "json/json.h"
#include "merkle/receipt.h"
#include "node/client.h"
#include "apps/logging.h"
#include "node/node.h"

using namespace ccf;

int main() {
  sim::Environment env;

  // --- Identities -------------------------------------------------------
  // One consortium member and one user, each with a self-managed key pair
  // and certificate (paper §2: members govern, users invoke endpoints).
  crypto::KeyPair member_key = crypto::KeyPair::FromSeed(ToBytes("member0"));
  crypto::Certificate member_cert = crypto::IssueCertificate(
      "member0", "member", member_key.public_key(), member_key, "");
  crypto::KeyPair user_key = crypto::KeyPair::FromSeed(ToBytes("user0"));
  crypto::Certificate user_cert = crypto::IssueCertificate(
      "user0", "user", user_key.public_key(), user_key, "");

  // --- Start the service ------------------------------------------------
  node::NodeConfig config;
  config.node_id = "n0";
  config.signature_interval_txs = 5;
  config.signature_interval_ms = 20;

  node::ServiceInit init;
  init.members.push_back(
      {"member0", member_cert.Serialize(), member_key.public_key()});
  init.initial_users.emplace_back("user0", user_cert.Serialize());
  init.open_immediately = true;

  apps::LoggingApp app;
  auto n0 = node::Node::CreateGenesis(config, init, &app, &env);
  env.Step(10);
  std::printf("service started; identity %s...\n",
              HexEncode(ByteSpan(n0->service_identity().data(), 8)).c_str());

  // --- Connect as the user over STLS -------------------------------------
  node::Client client("user0-client", &env, n0->service_identity(),
                      &user_key, user_cert);
  client.Connect("n0");

  // --- Write a message ----------------------------------------------------
  json::Object msg;
  msg["id"] = 1;
  msg["msg"] = "hello confidential world";
  auto write = client.PostJson("/app/log", json::Value(std::move(msg)));
  if (!write.ok() || write->status != 200) {
    std::fprintf(stderr, "write failed\n");
    return 1;
  }
  auto txid = node::Client::TxIdOf(*write);
  std::printf("write accepted as transaction %llu.%llu\n",
              static_cast<unsigned long long>(txid->first),
              static_cast<unsigned long long>(txid->second));

  // --- Poll the built-in tx endpoint until Committed ----------------------
  std::string status;
  env.RunUntil(
      [&] {
        auto resp = client.Get("/node/tx?view=" + std::to_string(txid->first) +
                               "&seqno=" + std::to_string(txid->second));
        if (!resp.ok()) return false;
        status = json::Parse(ToString(resp->body))->GetString("status");
        return status == "Committed";
      },
      5000);
  std::printf("transaction status: %s\n", status.c_str());

  // --- Read it back --------------------------------------------------------
  auto read = client.Get("/app/log?id=1");
  std::printf("read back: %s\n", ToString(read->body).c_str());

  // --- Fetch and verify a receipt offline ---------------------------------
  Result<http::Response> receipt_resp = Status::Unavailable("pending");
  env.RunUntil(
      [&] {
        receipt_resp =
            client.Get("/node/receipt?seqno=" + std::to_string(txid->second));
        return receipt_resp.ok() && receipt_resp->status == 200;
      },
      5000);
  auto body = json::Parse(ToString(receipt_resp->body));
  auto receipt_bytes = HexDecode(body->GetString("receipt"));
  auto receipt = merkle::Receipt::Deserialize(*receipt_bytes);
  Status verified = receipt->Verify(n0->service_identity());
  std::printf("receipt verifies offline against the service identity: %s\n",
              verified.ok() ? "yes" : verified.ToString().c_str());

  // A tampered receipt fails.
  merkle::Receipt bad = *receipt;
  bad.write_set_digest[0] ^= 1;
  std::printf("tampered receipt rejected: %s\n",
              bad.Verify(n0->service_identity()).ok() ? "NO (bug!)" : "yes");

  std::printf("quickstart complete.\n");
  return 0;
}
