# Empty compiler generated dependencies file for crypto_ec_test.
# This may be replaced when dependencies are built.
