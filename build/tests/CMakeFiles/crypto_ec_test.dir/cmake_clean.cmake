file(REMOVE_RECURSE
  "CMakeFiles/crypto_ec_test.dir/crypto_ec_test.cc.o"
  "CMakeFiles/crypto_ec_test.dir/crypto_ec_test.cc.o.d"
  "crypto_ec_test"
  "crypto_ec_test.pdb"
  "crypto_ec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_ec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
