file(REMOVE_RECURSE
  "CMakeFiles/consensus_reconfig_test.dir/consensus_reconfig_test.cc.o"
  "CMakeFiles/consensus_reconfig_test.dir/consensus_reconfig_test.cc.o.d"
  "consensus_reconfig_test"
  "consensus_reconfig_test.pdb"
  "consensus_reconfig_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_reconfig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
