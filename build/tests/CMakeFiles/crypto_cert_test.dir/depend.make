# Empty dependencies file for crypto_cert_test.
# This may be replaced when dependencies are built.
