file(REMOVE_RECURSE
  "CMakeFiles/crypto_cert_test.dir/crypto_cert_test.cc.o"
  "CMakeFiles/crypto_cert_test.dir/crypto_cert_test.cc.o.d"
  "crypto_cert_test"
  "crypto_cert_test.pdb"
  "crypto_cert_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_cert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
