file(REMOVE_RECURSE
  "CMakeFiles/ds_champ_test.dir/ds_champ_test.cc.o"
  "CMakeFiles/ds_champ_test.dir/ds_champ_test.cc.o.d"
  "ds_champ_test"
  "ds_champ_test.pdb"
  "ds_champ_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_champ_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
