# Empty dependencies file for ds_champ_test.
# This may be replaced when dependencies are built.
