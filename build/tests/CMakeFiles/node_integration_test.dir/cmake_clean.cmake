file(REMOVE_RECURSE
  "CMakeFiles/node_integration_test.dir/node_integration_test.cc.o"
  "CMakeFiles/node_integration_test.dir/node_integration_test.cc.o.d"
  "node_integration_test"
  "node_integration_test.pdb"
  "node_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
