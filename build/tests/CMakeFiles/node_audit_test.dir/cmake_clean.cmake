file(REMOVE_RECURSE
  "CMakeFiles/node_audit_test.dir/node_audit_test.cc.o"
  "CMakeFiles/node_audit_test.dir/node_audit_test.cc.o.d"
  "node_audit_test"
  "node_audit_test.pdb"
  "node_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
