# Empty dependencies file for node_audit_test.
# This may be replaced when dependencies are built.
