file(REMOVE_RECURSE
  "CMakeFiles/rpc_session_test.dir/rpc_session_test.cc.o"
  "CMakeFiles/rpc_session_test.dir/rpc_session_test.cc.o.d"
  "rpc_session_test"
  "rpc_session_test.pdb"
  "rpc_session_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpc_session_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
