# Empty dependencies file for rpc_session_test.
# This may be replaced when dependencies are built.
