# Empty compiler generated dependencies file for consensus_election_test.
# This may be replaced when dependencies are built.
