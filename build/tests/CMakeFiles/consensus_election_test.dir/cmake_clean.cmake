file(REMOVE_RECURSE
  "CMakeFiles/consensus_election_test.dir/consensus_election_test.cc.o"
  "CMakeFiles/consensus_election_test.dir/consensus_election_test.cc.o.d"
  "consensus_election_test"
  "consensus_election_test.pdb"
  "consensus_election_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consensus_election_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
