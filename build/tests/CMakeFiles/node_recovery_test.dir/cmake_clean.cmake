file(REMOVE_RECURSE
  "CMakeFiles/node_recovery_test.dir/node_recovery_test.cc.o"
  "CMakeFiles/node_recovery_test.dir/node_recovery_test.cc.o.d"
  "node_recovery_test"
  "node_recovery_test.pdb"
  "node_recovery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_recovery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
