file(REMOVE_RECURSE
  "CMakeFiles/kv_property_test.dir/kv_property_test.cc.o"
  "CMakeFiles/kv_property_test.dir/kv_property_test.cc.o.d"
  "kv_property_test"
  "kv_property_test.pdb"
  "kv_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kv_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
