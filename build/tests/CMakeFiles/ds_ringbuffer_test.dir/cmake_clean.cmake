file(REMOVE_RECURSE
  "CMakeFiles/ds_ringbuffer_test.dir/ds_ringbuffer_test.cc.o"
  "CMakeFiles/ds_ringbuffer_test.dir/ds_ringbuffer_test.cc.o.d"
  "ds_ringbuffer_test"
  "ds_ringbuffer_test.pdb"
  "ds_ringbuffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_ringbuffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
