# Empty dependencies file for ds_ringbuffer_test.
# This may be replaced when dependencies are built.
