# Empty compiler generated dependencies file for gov_test.
# This may be replaced when dependencies are built.
