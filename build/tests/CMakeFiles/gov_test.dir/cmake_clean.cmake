file(REMOVE_RECURSE
  "CMakeFiles/gov_test.dir/gov_test.cc.o"
  "CMakeFiles/gov_test.dir/gov_test.cc.o.d"
  "gov_test"
  "gov_test.pdb"
  "gov_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gov_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
