# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_hash_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_aes_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_ec_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_shamir_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_cert_test[1]_include.cmake")
include("/root/repo/build/tests/ds_champ_test[1]_include.cmake")
include("/root/repo/build/tests/ds_ringbuffer_test[1]_include.cmake")
include("/root/repo/build/tests/merkle_test[1]_include.cmake")
include("/root/repo/build/tests/kv_store_test[1]_include.cmake")
include("/root/repo/build/tests/ledger_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_election_test[1]_include.cmake")
include("/root/repo/build/tests/consensus_reconfig_test[1]_include.cmake")
include("/root/repo/build/tests/script_test[1]_include.cmake")
include("/root/repo/build/tests/tee_test[1]_include.cmake")
include("/root/repo/build/tests/http_test[1]_include.cmake")
include("/root/repo/build/tests/rpc_session_test[1]_include.cmake")
include("/root/repo/build/tests/gov_test[1]_include.cmake")
include("/root/repo/build/tests/node_integration_test[1]_include.cmake")
include("/root/repo/build/tests/node_recovery_test[1]_include.cmake")
include("/root/repo/build/tests/node_audit_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/kv_property_test[1]_include.cmake")
