file(REMOVE_RECURSE
  "CMakeFiles/governance_recovery.dir/governance_recovery.cpp.o"
  "CMakeFiles/governance_recovery.dir/governance_recovery.cpp.o.d"
  "governance_recovery"
  "governance_recovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/governance_recovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
