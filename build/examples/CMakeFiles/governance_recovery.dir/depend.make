# Empty dependencies file for governance_recovery.
# This may be replaced when dependencies are built.
