file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_signatures.dir/bench_fig8_signatures.cc.o"
  "CMakeFiles/bench_fig8_signatures.dir/bench_fig8_signatures.cc.o.d"
  "bench_fig8_signatures"
  "bench_fig8_signatures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_signatures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
