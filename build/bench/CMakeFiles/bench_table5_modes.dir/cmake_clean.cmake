file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_modes.dir/bench_table5_modes.cc.o"
  "CMakeFiles/bench_table5_modes.dir/bench_table5_modes.cc.o.d"
  "bench_table5_modes"
  "bench_table5_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
