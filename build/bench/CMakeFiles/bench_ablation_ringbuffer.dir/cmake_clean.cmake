file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ringbuffer.dir/bench_ablation_ringbuffer.cc.o"
  "CMakeFiles/bench_ablation_ringbuffer.dir/bench_ablation_ringbuffer.cc.o.d"
  "bench_ablation_ringbuffer"
  "bench_ablation_ringbuffer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ringbuffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
