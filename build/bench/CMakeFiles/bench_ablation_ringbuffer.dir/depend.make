# Empty dependencies file for bench_ablation_ringbuffer.
# This may be replaced when dependencies are built.
