file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_availability.dir/bench_fig9_availability.cc.o"
  "CMakeFiles/bench_fig9_availability.dir/bench_fig9_availability.cc.o.d"
  "bench_fig9_availability"
  "bench_fig9_availability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_availability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
