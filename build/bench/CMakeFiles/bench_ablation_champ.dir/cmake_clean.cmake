file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_champ.dir/bench_ablation_champ.cc.o"
  "CMakeFiles/bench_ablation_champ.dir/bench_ablation_champ.cc.o.d"
  "bench_ablation_champ"
  "bench_ablation_champ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_champ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
