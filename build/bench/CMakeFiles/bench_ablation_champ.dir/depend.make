# Empty dependencies file for bench_ablation_champ.
# This may be replaced when dependencies are built.
