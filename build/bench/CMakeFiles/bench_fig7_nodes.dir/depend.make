# Empty dependencies file for bench_fig7_nodes.
# This may be replaced when dependencies are built.
