file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_nodes.dir/bench_fig7_nodes.cc.o"
  "CMakeFiles/bench_fig7_nodes.dir/bench_fig7_nodes.cc.o.d"
  "bench_fig7_nodes"
  "bench_fig7_nodes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_nodes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
