# Empty compiler generated dependencies file for ccf_sim.
# This may be replaced when dependencies are built.
