file(REMOVE_RECURSE
  "CMakeFiles/ccf_sim.dir/environment.cc.o"
  "CMakeFiles/ccf_sim.dir/environment.cc.o.d"
  "libccf_sim.a"
  "libccf_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
