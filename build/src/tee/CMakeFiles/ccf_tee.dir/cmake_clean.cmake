file(REMOVE_RECURSE
  "CMakeFiles/ccf_tee.dir/attestation.cc.o"
  "CMakeFiles/ccf_tee.dir/attestation.cc.o.d"
  "CMakeFiles/ccf_tee.dir/boundary.cc.o"
  "CMakeFiles/ccf_tee.dir/boundary.cc.o.d"
  "libccf_tee.a"
  "libccf_tee.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_tee.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
