file(REMOVE_RECURSE
  "libccf_tee.a"
)
