# Empty dependencies file for ccf_tee.
# This may be replaced when dependencies are built.
