# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("json")
subdirs("crypto")
subdirs("ds")
subdirs("merkle")
subdirs("kv")
subdirs("ledger")
subdirs("consensus")
subdirs("sim")
subdirs("script")
subdirs("tee")
subdirs("http")
subdirs("rpc")
subdirs("gov")
subdirs("node")
