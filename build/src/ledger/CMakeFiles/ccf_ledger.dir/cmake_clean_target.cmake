file(REMOVE_RECURSE
  "libccf_ledger.a"
)
