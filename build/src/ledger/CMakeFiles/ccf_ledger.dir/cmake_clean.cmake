file(REMOVE_RECURSE
  "CMakeFiles/ccf_ledger.dir/ledger.cc.o"
  "CMakeFiles/ccf_ledger.dir/ledger.cc.o.d"
  "libccf_ledger.a"
  "libccf_ledger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_ledger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
