# Empty compiler generated dependencies file for ccf_ledger.
# This may be replaced when dependencies are built.
