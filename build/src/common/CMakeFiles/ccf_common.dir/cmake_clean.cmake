file(REMOVE_RECURSE
  "CMakeFiles/ccf_common.dir/hex.cc.o"
  "CMakeFiles/ccf_common.dir/hex.cc.o.d"
  "CMakeFiles/ccf_common.dir/logging.cc.o"
  "CMakeFiles/ccf_common.dir/logging.cc.o.d"
  "libccf_common.a"
  "libccf_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
