# Empty dependencies file for ccf_common.
# This may be replaced when dependencies are built.
