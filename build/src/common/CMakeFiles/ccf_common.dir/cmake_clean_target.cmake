file(REMOVE_RECURSE
  "libccf_common.a"
)
