# Empty dependencies file for ccf_node.
# This may be replaced when dependencies are built.
