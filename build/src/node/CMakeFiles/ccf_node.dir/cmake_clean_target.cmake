file(REMOVE_RECURSE
  "libccf_node.a"
)
