file(REMOVE_RECURSE
  "CMakeFiles/ccf_node.dir/audit.cc.o"
  "CMakeFiles/ccf_node.dir/audit.cc.o.d"
  "CMakeFiles/ccf_node.dir/client.cc.o"
  "CMakeFiles/ccf_node.dir/client.cc.o.d"
  "CMakeFiles/ccf_node.dir/logging_app.cc.o"
  "CMakeFiles/ccf_node.dir/logging_app.cc.o.d"
  "CMakeFiles/ccf_node.dir/node.cc.o"
  "CMakeFiles/ccf_node.dir/node.cc.o.d"
  "CMakeFiles/ccf_node.dir/node_endpoints.cc.o"
  "CMakeFiles/ccf_node.dir/node_endpoints.cc.o.d"
  "libccf_node.a"
  "libccf_node.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_node.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
