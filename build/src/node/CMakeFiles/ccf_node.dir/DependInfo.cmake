
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/node/audit.cc" "src/node/CMakeFiles/ccf_node.dir/audit.cc.o" "gcc" "src/node/CMakeFiles/ccf_node.dir/audit.cc.o.d"
  "/root/repo/src/node/client.cc" "src/node/CMakeFiles/ccf_node.dir/client.cc.o" "gcc" "src/node/CMakeFiles/ccf_node.dir/client.cc.o.d"
  "/root/repo/src/node/logging_app.cc" "src/node/CMakeFiles/ccf_node.dir/logging_app.cc.o" "gcc" "src/node/CMakeFiles/ccf_node.dir/logging_app.cc.o.d"
  "/root/repo/src/node/node.cc" "src/node/CMakeFiles/ccf_node.dir/node.cc.o" "gcc" "src/node/CMakeFiles/ccf_node.dir/node.cc.o.d"
  "/root/repo/src/node/node_endpoints.cc" "src/node/CMakeFiles/ccf_node.dir/node_endpoints.cc.o" "gcc" "src/node/CMakeFiles/ccf_node.dir/node_endpoints.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ccf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/consensus/CMakeFiles/ccf_consensus.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ccf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/gov/CMakeFiles/ccf_gov.dir/DependInfo.cmake"
  "/root/repo/build/src/http/CMakeFiles/ccf_http.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/ccf_json.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/ccf_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/ledger/CMakeFiles/ccf_ledger.dir/DependInfo.cmake"
  "/root/repo/build/src/merkle/CMakeFiles/ccf_merkle.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/ccf_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/ccf_script.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ccf_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tee/CMakeFiles/ccf_tee.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/ccf_ds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
