# Empty dependencies file for ccf_merkle.
# This may be replaced when dependencies are built.
