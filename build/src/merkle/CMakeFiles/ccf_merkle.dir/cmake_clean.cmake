file(REMOVE_RECURSE
  "CMakeFiles/ccf_merkle.dir/merkle.cc.o"
  "CMakeFiles/ccf_merkle.dir/merkle.cc.o.d"
  "CMakeFiles/ccf_merkle.dir/receipt.cc.o"
  "CMakeFiles/ccf_merkle.dir/receipt.cc.o.d"
  "libccf_merkle.a"
  "libccf_merkle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_merkle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
