file(REMOVE_RECURSE
  "libccf_merkle.a"
)
