file(REMOVE_RECURSE
  "CMakeFiles/ccf_rpc.dir/endpoints.cc.o"
  "CMakeFiles/ccf_rpc.dir/endpoints.cc.o.d"
  "CMakeFiles/ccf_rpc.dir/session.cc.o"
  "CMakeFiles/ccf_rpc.dir/session.cc.o.d"
  "libccf_rpc.a"
  "libccf_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
