file(REMOVE_RECURSE
  "libccf_rpc.a"
)
