# Empty dependencies file for ccf_rpc.
# This may be replaced when dependencies are built.
