file(REMOVE_RECURSE
  "libccf_ds.a"
)
