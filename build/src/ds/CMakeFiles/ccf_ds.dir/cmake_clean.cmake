file(REMOVE_RECURSE
  "CMakeFiles/ccf_ds.dir/ringbuffer.cc.o"
  "CMakeFiles/ccf_ds.dir/ringbuffer.cc.o.d"
  "libccf_ds.a"
  "libccf_ds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_ds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
