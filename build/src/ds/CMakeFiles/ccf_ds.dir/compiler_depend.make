# Empty compiler generated dependencies file for ccf_ds.
# This may be replaced when dependencies are built.
