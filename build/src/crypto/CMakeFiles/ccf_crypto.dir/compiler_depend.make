# Empty compiler generated dependencies file for ccf_crypto.
# This may be replaced when dependencies are built.
