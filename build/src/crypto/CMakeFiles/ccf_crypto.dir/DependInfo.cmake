
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/cert.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/cert.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/cert.cc.o.d"
  "/root/repo/src/crypto/ec25519.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/ec25519.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/ec25519.cc.o.d"
  "/root/repo/src/crypto/gcm.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/gcm.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/gcm.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/sha512.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/sha512.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/sha512.cc.o.d"
  "/root/repo/src/crypto/shamir.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/shamir.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/shamir.cc.o.d"
  "/root/repo/src/crypto/sign.cc" "src/crypto/CMakeFiles/ccf_crypto.dir/sign.cc.o" "gcc" "src/crypto/CMakeFiles/ccf_crypto.dir/sign.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ccf_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
