file(REMOVE_RECURSE
  "libccf_crypto.a"
)
