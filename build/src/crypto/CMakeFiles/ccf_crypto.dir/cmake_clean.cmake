file(REMOVE_RECURSE
  "CMakeFiles/ccf_crypto.dir/aes.cc.o"
  "CMakeFiles/ccf_crypto.dir/aes.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/cert.cc.o"
  "CMakeFiles/ccf_crypto.dir/cert.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/ec25519.cc.o"
  "CMakeFiles/ccf_crypto.dir/ec25519.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/gcm.cc.o"
  "CMakeFiles/ccf_crypto.dir/gcm.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/hmac.cc.o"
  "CMakeFiles/ccf_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/sha256.cc.o"
  "CMakeFiles/ccf_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/sha512.cc.o"
  "CMakeFiles/ccf_crypto.dir/sha512.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/shamir.cc.o"
  "CMakeFiles/ccf_crypto.dir/shamir.cc.o.d"
  "CMakeFiles/ccf_crypto.dir/sign.cc.o"
  "CMakeFiles/ccf_crypto.dir/sign.cc.o.d"
  "libccf_crypto.a"
  "libccf_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
