# Empty dependencies file for ccf_http.
# This may be replaced when dependencies are built.
