file(REMOVE_RECURSE
  "libccf_http.a"
)
