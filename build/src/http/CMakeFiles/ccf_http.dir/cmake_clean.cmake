file(REMOVE_RECURSE
  "CMakeFiles/ccf_http.dir/http.cc.o"
  "CMakeFiles/ccf_http.dir/http.cc.o.d"
  "libccf_http.a"
  "libccf_http.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_http.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
