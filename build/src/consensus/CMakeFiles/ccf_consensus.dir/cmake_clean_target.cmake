file(REMOVE_RECURSE
  "libccf_consensus.a"
)
