# Empty compiler generated dependencies file for ccf_consensus.
# This may be replaced when dependencies are built.
