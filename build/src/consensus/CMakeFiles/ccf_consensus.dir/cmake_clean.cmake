file(REMOVE_RECURSE
  "CMakeFiles/ccf_consensus.dir/raft.cc.o"
  "CMakeFiles/ccf_consensus.dir/raft.cc.o.d"
  "CMakeFiles/ccf_consensus.dir/types.cc.o"
  "CMakeFiles/ccf_consensus.dir/types.cc.o.d"
  "libccf_consensus.a"
  "libccf_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
