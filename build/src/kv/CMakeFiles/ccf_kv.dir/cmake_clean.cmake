file(REMOVE_RECURSE
  "CMakeFiles/ccf_kv.dir/encryptor.cc.o"
  "CMakeFiles/ccf_kv.dir/encryptor.cc.o.d"
  "CMakeFiles/ccf_kv.dir/snapshot.cc.o"
  "CMakeFiles/ccf_kv.dir/snapshot.cc.o.d"
  "CMakeFiles/ccf_kv.dir/store.cc.o"
  "CMakeFiles/ccf_kv.dir/store.cc.o.d"
  "CMakeFiles/ccf_kv.dir/writeset.cc.o"
  "CMakeFiles/ccf_kv.dir/writeset.cc.o.d"
  "libccf_kv.a"
  "libccf_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
