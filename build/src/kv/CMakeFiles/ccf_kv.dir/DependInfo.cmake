
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kv/encryptor.cc" "src/kv/CMakeFiles/ccf_kv.dir/encryptor.cc.o" "gcc" "src/kv/CMakeFiles/ccf_kv.dir/encryptor.cc.o.d"
  "/root/repo/src/kv/snapshot.cc" "src/kv/CMakeFiles/ccf_kv.dir/snapshot.cc.o" "gcc" "src/kv/CMakeFiles/ccf_kv.dir/snapshot.cc.o.d"
  "/root/repo/src/kv/store.cc" "src/kv/CMakeFiles/ccf_kv.dir/store.cc.o" "gcc" "src/kv/CMakeFiles/ccf_kv.dir/store.cc.o.d"
  "/root/repo/src/kv/writeset.cc" "src/kv/CMakeFiles/ccf_kv.dir/writeset.cc.o" "gcc" "src/kv/CMakeFiles/ccf_kv.dir/writeset.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ccf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ccf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/ccf_ds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
