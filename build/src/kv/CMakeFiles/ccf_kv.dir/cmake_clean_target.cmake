file(REMOVE_RECURSE
  "libccf_kv.a"
)
