# Empty compiler generated dependencies file for ccf_kv.
# This may be replaced when dependencies are built.
