file(REMOVE_RECURSE
  "libccf_gov.a"
)
