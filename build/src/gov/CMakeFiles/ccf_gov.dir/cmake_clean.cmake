file(REMOVE_RECURSE
  "CMakeFiles/ccf_gov.dir/constitution.cc.o"
  "CMakeFiles/ccf_gov.dir/constitution.cc.o.d"
  "CMakeFiles/ccf_gov.dir/proposals.cc.o"
  "CMakeFiles/ccf_gov.dir/proposals.cc.o.d"
  "CMakeFiles/ccf_gov.dir/records.cc.o"
  "CMakeFiles/ccf_gov.dir/records.cc.o.d"
  "CMakeFiles/ccf_gov.dir/shares.cc.o"
  "CMakeFiles/ccf_gov.dir/shares.cc.o.d"
  "libccf_gov.a"
  "libccf_gov.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_gov.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
