# Empty compiler generated dependencies file for ccf_gov.
# This may be replaced when dependencies are built.
