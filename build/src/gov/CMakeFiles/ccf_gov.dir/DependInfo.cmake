
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gov/constitution.cc" "src/gov/CMakeFiles/ccf_gov.dir/constitution.cc.o" "gcc" "src/gov/CMakeFiles/ccf_gov.dir/constitution.cc.o.d"
  "/root/repo/src/gov/proposals.cc" "src/gov/CMakeFiles/ccf_gov.dir/proposals.cc.o" "gcc" "src/gov/CMakeFiles/ccf_gov.dir/proposals.cc.o.d"
  "/root/repo/src/gov/records.cc" "src/gov/CMakeFiles/ccf_gov.dir/records.cc.o" "gcc" "src/gov/CMakeFiles/ccf_gov.dir/records.cc.o.d"
  "/root/repo/src/gov/shares.cc" "src/gov/CMakeFiles/ccf_gov.dir/shares.cc.o" "gcc" "src/gov/CMakeFiles/ccf_gov.dir/shares.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ccf_common.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ccf_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/json/CMakeFiles/ccf_json.dir/DependInfo.cmake"
  "/root/repo/build/src/kv/CMakeFiles/ccf_kv.dir/DependInfo.cmake"
  "/root/repo/build/src/script/CMakeFiles/ccf_script.dir/DependInfo.cmake"
  "/root/repo/build/src/ds/CMakeFiles/ccf_ds.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
