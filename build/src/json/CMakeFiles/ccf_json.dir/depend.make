# Empty dependencies file for ccf_json.
# This may be replaced when dependencies are built.
