file(REMOVE_RECURSE
  "libccf_json.a"
)
