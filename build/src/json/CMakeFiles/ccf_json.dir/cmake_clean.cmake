file(REMOVE_RECURSE
  "CMakeFiles/ccf_json.dir/json.cc.o"
  "CMakeFiles/ccf_json.dir/json.cc.o.d"
  "libccf_json.a"
  "libccf_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
