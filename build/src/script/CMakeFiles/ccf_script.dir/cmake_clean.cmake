file(REMOVE_RECURSE
  "CMakeFiles/ccf_script.dir/interp.cc.o"
  "CMakeFiles/ccf_script.dir/interp.cc.o.d"
  "CMakeFiles/ccf_script.dir/lexer.cc.o"
  "CMakeFiles/ccf_script.dir/lexer.cc.o.d"
  "CMakeFiles/ccf_script.dir/parser.cc.o"
  "CMakeFiles/ccf_script.dir/parser.cc.o.d"
  "CMakeFiles/ccf_script.dir/value.cc.o"
  "CMakeFiles/ccf_script.dir/value.cc.o.d"
  "libccf_script.a"
  "libccf_script.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccf_script.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
