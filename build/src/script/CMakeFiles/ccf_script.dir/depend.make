# Empty dependencies file for ccf_script.
# This may be replaced when dependencies are built.
