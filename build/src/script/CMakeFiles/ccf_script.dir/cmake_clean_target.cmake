file(REMOVE_RECURSE
  "libccf_script.a"
)
