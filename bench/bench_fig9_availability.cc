// Figure 9 + Listing 2: impact of primary failure (A) and subsequent
// governance-driven node replacement (B-E) on the availability of reads
// and writes.
//
// Setup mirrors the paper: three initial nodes {n0,n1,n2}, three consortium
// members {m0,m1,m2} with the default constitution; one user sends writes
// to the primary n0, another sends reads to the backup n1.
//   A: n0 is killed. Writes stop; reads continue.
//      A new primary is elected and the writer retries; writes resume.
//   B: operator prepares n3, which joins the service (attestation).
//   C: m0 proposes: transition n3 to trusted + remove n0.
//   D: m1's ballot accepts the proposal; reconfiguration begins.
//   E: reconfiguration commits; fault tolerance is restored.
// Afterwards, the governance transactions are dumped from the ledger in
// the style of the paper's Listing 2.

#include <cstdio>
#include <deque>
#include <map>

#include "bench/bench_util.h"
#include "kv/tables.h"

namespace ccf::bench {
namespace {

constexpr uint64_t kBucketMs = 100;

struct Timeline {
  std::map<uint64_t, uint64_t> writes;  // bucket -> completed
  std::map<uint64_t, uint64_t> reads;
  std::vector<std::pair<uint64_t, std::string>> events;

  void Print(uint64_t t0, uint64_t duration_ms) const {
    std::printf("%-10s %12s %12s\n", "t (ms)", "writes/s", "reads/s");
    for (uint64_t t = 0; t < duration_ms; t += kBucketMs) {
      uint64_t bucket = (t0 + t) / kBucketMs;
      auto wit = writes.find(bucket);
      auto rit = reads.find(bucket);
      double scale = 1000.0 / kBucketMs;
      std::printf("%-10llu %12.0f %12.0f",
                  static_cast<unsigned long long>(t),
                  (wit != writes.end() ? wit->second : 0) * scale,
                  (rit != reads.end() ? rit->second : 0) * scale);
      for (const auto& [ts, label] : events) {
        if (ts >= t && ts < t + kBucketMs) std::printf("   <-- %s", label.c_str());
      }
      std::printf("\n");
    }
  }
};

// A self-healing request stream: reissues on completion and reconnects to
// the current primary (writes) when stalled, as users do in the paper
// ("users connected to it will retry with other nodes").
class Stream {
 public:
  Stream(ServiceHarness* h, node::Client* client, bool is_write,
         Timeline* timeline, std::map<uint64_t, uint64_t>* counts)
      : h_(h),
        client_(client),
        is_write_(is_write),
        counts_(counts) {
    (void)timeline;
  }

  void Prime(int pipeline) {
    pipeline_ = pipeline;
    for (int i = 0; i < pipeline; ++i) Issue();
  }

  void OnStep(uint64_t now_ms) {
    for (uint64_t i = 0; i < pending_reissues_; ++i) Issue();
    pending_reissues_ = 0;
    if (is_write_ && now_ms > last_response_ms_ + 300) {
      // Stalled: retry against the current primary.
      node::Node* primary = h_->Primary();
      if (primary != nullptr && h_->env().IsUp(primary->id()) &&
          primary->id() != connected_to_) {
        connected_to_ = primary->id();
        client_->Connect(connected_to_);
        last_response_ms_ = now_ms;
        for (int i = 0; i < pipeline_; ++i) Issue();
      }
    }
  }

 private:
  void Issue() {
    ++seq_;
    http::Request req =
        is_write_ ? MakeWriteRequest(seq_) : MakeReadRequest(seq_);
    client_->SendRequest(std::move(req), [this](Result<http::Response> r) {
      last_response_ms_ = h_->env().now_ms();
      if (r.ok() && r->status < 400) {
        (*counts_)[h_->env().now_ms() / kBucketMs] += 1;
      }
      ++pending_reissues_;
    });
  }

  ServiceHarness* h_;
  node::Client* client_;
  bool is_write_;
  std::map<uint64_t, uint64_t>* counts_;
  uint64_t seq_ = 0;
  uint64_t last_response_ms_ = 0;
  uint64_t pending_reissues_ = 0;
  int pipeline_ = 0;
  std::string connected_to_;
};

void DumpGovernanceLedger(const ledger::Ledger& ledger) {
  std::printf(
      "\nListing 2 analogue: governance key updates from the ledger\n");
  for (const ledger::Entry& e : ledger.entries()) {
    auto ws = kv::WriteSet::Parse(e.public_ws, {});
    if (!ws.ok()) continue;
    bool printed_header = false;
    for (const auto& [map_name, writes] : ws->maps) {
      if (map_name.find("ccf.gov.nodes.info") == std::string::npos &&
          map_name.find("ccf.gov.proposals") == std::string::npos) {
        continue;
      }
      for (const auto& [key, value] : writes) {
        if (!printed_header) {
          std::printf("txid %llu.%llu:\n",
                      static_cast<unsigned long long>(e.view),
                      static_cast<unsigned long long>(e.seqno));
          printed_header = true;
        }
        std::string v = value.has_value() ? ToString(*value) : "<removed>";
        if (v.size() > 120) v = v.substr(0, 117) + "...";
        std::printf("  map %s:\n    %s: %s\n", map_name.c_str(),
                    ToString(key).c_str(), v.c_str());
      }
    }
  }
}

int Run() {
  ServiceHarness h;
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->tee_mode = tee::TeeMode::kVirtual;
    cfg->signature_interval_txs = 20;
    cfg->signature_interval_ms = 20;
    cfg->snapshot_interval_txs = 1u << 30;
  });
  h.AddUser("user0");
  h.AddUser("user1");
  h.StartGenesis();
  if (h.JoinAndTrust("n1", 20000) == nullptr ||
      h.JoinAndTrust("n2", 20000) == nullptr) {
    std::fprintf(stderr, "failed to build 3-node service\n");
    return 1;
  }

  Timeline timeline;
  Stream writer(&h, h.UserClient("user0", "n0"), /*is_write=*/true,
                &timeline, &timeline.writes);
  Stream reader(&h, h.UserClient("user1", "n1"), /*is_write=*/false,
                &timeline, &timeline.reads);
  writer.Prime(8);
  reader.Prime(8);

  auto run_for = [&](uint64_t ms) {
    uint64_t until = h.env().now_ms() + ms;
    while (h.env().now_ms() < until) {
      h.env().Step(1);
      writer.OnStep(h.env().now_ms());
      reader.OnStep(h.env().now_ms());
    }
  };
  uint64_t t0 = h.env().now_ms();
  auto mark = [&](const std::string& label) {
    timeline.events.emplace_back(h.env().now_ms() - t0, label);
    std::fprintf(stderr, "[%6llu ms] %s\n",
                 static_cast<unsigned long long>(h.env().now_ms() - t0),
                 label.c_str());
  };

  run_for(1000);  // steady state

  mark("A: primary n0 killed");
  h.env().SetUp("n0", false);
  run_for(800);

  mark("B: n3 joins the service");
  node::Node* primary = h.Primary();
  auto n3 = node::Node::CreateJoiner(
      BenchNodeConfig("n3", tee::TeeMode::kVirtual, 20),
      h.node("n0")->service_identity(),
      primary != nullptr ? primary->id() : "n1", nullptr, &h.env());
  run_for(400);

  mark("C: m0 proposes {trust n3, remove n0}");
  // One proposal with both actions, exactly like the paper's p3.
  json::Object trust_act;
  trust_act["name"] = "transition_node_to_trusted";
  trust_act["args"] = json::Object{{"node_id", json::Value("n3")}};
  json::Object remove_act;
  remove_act["name"] = "remove_node";
  remove_act["args"] = json::Object{{"node_id", json::Value("n0")}};
  json::Object proposal;
  proposal["actions"] = json::Array{json::Value(std::move(trust_act)),
                                    json::Value(std::move(remove_act))};
  json::Object body;
  body["proposal"] = std::move(proposal);
  node::Client* m0 =
      h.MemberClient(0, primary != nullptr ? primary->id() : "n1");
  std::string pid;
  {
    auto resp = m0->PostJsonSigned("/gov/propose", json::Value(body), 10000);
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "proposal failed\n");
      return 1;
    }
    pid = json::Parse(ToString(resp->body))->GetString("proposal_id");
  }
  run_for(200);

  // Ballots from m0 and m1 (paper: "m0 and m1 then submit ballots").
  const char* kBal = "function vote(proposal, proposer_id) { return true; }";
  for (int i = 0; i < 2; ++i) {
    json::Object ballot;
    ballot["proposal_id"] = pid;
    ballot["ballot"] = kBal;
    auto resp = h.MemberClient(i, primary != nullptr ? primary->id() : "n1")
                    ->PostJsonSigned("/gov/vote",
                                     json::Value(std::move(ballot)), 10000);
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "ballot %d failed\n", i);
      return 1;
    }
    if (i == 1) mark("D: proposal accepted, reconfiguration begins");
  }

  // E: wait for n3 to be an active participant.
  if (!h.env().RunUntil(
          [&] { return n3->has_joined() && n3->raft().InActiveConfig(); },
          10000)) {
    std::fprintf(stderr, "n3 never activated\n");
  }
  mark("E: reconfiguration complete, fault tolerance restored");
  run_for(800);

  uint64_t total = h.env().now_ms() - t0;
  std::printf("Figure 9: availability of reads and writes (virtual time)\n");
  timeline.Print(t0, total);

  node::Node* final_primary = h.Primary();
  if (final_primary != nullptr) {
    DumpGovernanceLedger(final_primary->host_ledger());
  }
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main() { return ccf::bench::Run(); }
