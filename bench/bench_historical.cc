// Historical query path (paper §3.4): cost of serving point-in-time reads
// by fetching committed entries back from the untrusted host and
// re-verifying them in the enclave (Merkle leaf + receipt to a signed
// root + private-writeset decryption), versus answering from the bounded
// in-enclave cache.
//
//   cold   -- first range query: host fetch round trip + per-entry
//             verification and store reconstruction
//   warm   -- immediate repeat: served from the LRU cache
//   churn  -- many distinct ranges through a small cache: eviction and
//             refetch behaviour
//
// Results go to BENCH_historical.json (or the path given as the first
// non-flag argument) for scripts/bench_diff.py. --smoke / CCF_BENCH_SMOKE=1
// shrinks the run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace ccf::bench {
namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

// Drives the service until `path` answers something other than 202.
int DriveQuery(ServiceHarness* h, node::Client* client,
               const std::string& path) {
  int status = 0;
  h->env().RunUntil(
      [&] {
        auto resp = client->Get(path, 2000);
        if (!resp.ok()) return false;
        status = resp->status;
        return status != 202;
      },
      10000);
  return status;
}

int RunAll(const std::string& json_path, bool smoke) {
  const uint64_t writes = smoke ? 60 : 600;
  const uint64_t range_span = smoke ? 40 : 120;
  const int churn_queries = smoke ? 12 : 80;

  ServiceHarness h;
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->snapshot_interval_txs = 1u << 30;  // keep the full host ledger
    cfg->historical.max_range = 128;
    cfg->historical.cache_max_requests = 4;
  });
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  std::printf("historical query bench: %llu writes, range span %llu\n",
              static_cast<unsigned long long>(writes),
              static_cast<unsigned long long>(range_span));

  uint64_t last = 0;
  for (uint64_t i = 0; i < writes; ++i) {
    json::Object body;
    body["id"] = static_cast<int64_t>(i % 4);
    body["msg"] = "payload-" + std::to_string(i);
    auto resp = client->PostJson("/app/log", json::Value(std::move(body)));
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "setup write %llu failed\n",
                   static_cast<unsigned long long>(i));
      return 1;
    }
    auto txid = node::Client::TxIdOf(*resp);
    if (txid.has_value()) last = txid->second;
  }
  if (!h.env().RunUntil([&] { return n0->ReceiptableUpto() >= last; },
                        20000)) {
    std::fprintf(stderr, "service never became receiptable\n");
    return 1;
  }
  uint64_t upto = n0->ReceiptableUpto();
  uint64_t lo = upto > range_span ? upto - range_span + 1 : 1;
  std::string range_path = "/app/log/historical/range?id=0&from=" +
                           std::to_string(lo) + "&to=" + std::to_string(upto);

  json::Object root;
  root["smoke"] = smoke;

  // Cold: fetch + verify the whole range.
  auto t0 = std::chrono::steady_clock::now();
  int status = DriveQuery(&h, client, range_path);
  double cold_ms = MsSince(t0);
  if (status != 200) {
    std::fprintf(stderr, "cold query failed: HTTP %d\n", status);
    return 1;
  }
  uint64_t range_entries = upto - lo + 1;
  uint64_t verified = n0->historical_counters().entries_verified;
  if (verified < range_entries) {
    std::fprintf(stderr, "ERROR: only %llu of %llu entries verified\n",
                 static_cast<unsigned long long>(verified),
                 static_cast<unsigned long long>(range_entries));
    return 1;
  }
  json::Object cold;
  cold["range_entries"] = range_entries;
  cold["wall_ms"] = cold_ms;
  cold["verify_per_s"] =
      cold_ms > 0 ? 1000.0 * static_cast<double>(range_entries) / cold_ms : 0;
  cold["fetch_round_trips"] = n0->historical().stats().fetches;
  root["cold"] = json::Value(std::move(cold));
  std::printf("  cold: %llu entries in %.2f ms (%.0f verified entries/s)\n",
              static_cast<unsigned long long>(range_entries), cold_ms,
              1000.0 * static_cast<double>(range_entries) / cold_ms);

  // Warm: the same range straight from the cache.
  uint64_t fetches_before = n0->historical().stats().fetches;
  t0 = std::chrono::steady_clock::now();
  status = DriveQuery(&h, client, range_path);
  double warm_ms = MsSince(t0);
  if (status != 200 ||
      n0->historical().stats().fetches != fetches_before) {
    std::fprintf(stderr, "warm query missed the cache (HTTP %d)\n", status);
    return 1;
  }
  json::Object warm;
  warm["wall_ms"] = warm_ms;
  warm["speedup_vs_cold"] = warm_ms > 0 ? cold_ms / warm_ms : 0;
  root["warm"] = json::Value(std::move(warm));
  std::printf("  warm: %.2f ms (%.1fx vs cold)\n", warm_ms,
              warm_ms > 0 ? cold_ms / warm_ms : 0);

  // Churn: distinct small ranges through the 4-slot cache.
  t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < churn_queries; ++i) {
    uint64_t clo = 1 + (static_cast<uint64_t>(i) * 7) % (upto - 5);
    std::string p = "/app/log/historical/range?id=1&from=" +
                    std::to_string(clo) + "&to=" + std::to_string(clo + 4);
    if (DriveQuery(&h, client, p) != 200) {
      std::fprintf(stderr, "churn query %d failed\n", i);
      return 1;
    }
  }
  double churn_ms = MsSince(t0);
  json::Object churn;
  churn["queries"] = static_cast<uint64_t>(churn_queries);
  churn["wall_ms"] = churn_ms;
  churn["evictions"] = n0->historical().stats().evictions;
  churn["fetches"] = n0->historical().stats().fetches;
  root["churn"] = json::Value(std::move(churn));
  std::printf("  churn: %d queries in %.2f ms (%llu evictions, %llu"
              " fetches)\n",
              churn_queries, churn_ms,
              static_cast<unsigned long long>(
                  n0->historical().stats().evictions),
              static_cast<unsigned long long>(
                  n0->historical().stats().fetches));

  std::string dumped = json::Value(std::move(root)).DumpPretty();
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(dumped.data(), 1, dumped.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main(int argc, char** argv) {
  bool smoke = ccf::bench::SmokeMode();
  std::string json_path = "BENCH_historical.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  return ccf::bench::RunAll(json_path, smoke);
}
