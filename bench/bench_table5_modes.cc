// Table 5: throughput (tx/s) for writes/reads on a five-node service,
// comparing the C++ application with the scripted (CCL, the paper's "JS")
// application, in SGX-sim and virtual TEE modes.
//
// Expected shape (paper Table 5): C++ >> scripted, virtual > sgx-sim.
// |      |   SGX-sim        |   Virtual        |
// | C++  |  W/s  /  R/s     |  W/s  /  R/s     |
// | CCL  |  W/s  /  R/s     |  W/s  /  R/s     |
//
// Plus the exec-worker sweep (DESIGN.md §12): wall-clock throughput of
// compute-heavy read-only traffic (/app/hashread) and a contended mixed
// workload (/app/rmw + reads) as exec_threads grows, with the OCC
// conflict rate. Written to a JSON file (argv[1], default
// BENCH_exec.json) that scripts/bench_diff.py can compare across runs.
// Read-only endpoints skip commit validation, so their throughput should
// scale near-linearly with workers.

#include <cstdio>
#include <fstream>

#include "bench/bench_util.h"

namespace ccf::bench {
namespace {

const uint64_t kRequests = SmokeMode() ? 300 : 2500;
constexpr int kPipeline = 64;
constexpr int kNodes = 5;

struct Cell {
  double writes = 0;
  double reads = 0;
};

std::unique_ptr<ServiceHarness> BuildService(tee::TeeMode mode) {
  auto h = std::make_unique<ServiceHarness>();
  h->SetConfigTweak([mode](node::NodeConfig* cfg) {
    cfg->tee_mode = mode;
    cfg->signature_interval_txs = 100;
    cfg->signature_interval_ms = 50;
    cfg->snapshot_interval_txs = 1u << 30;
  });
  for (int u = 0; u < 4; ++u) h->AddUser("user" + std::to_string(u));
  h->StartGenesis();
  for (int i = 1; i < kNodes; ++i) {
    if (h->JoinAndTrust("n" + std::to_string(i), 20000) == nullptr) {
      return nullptr;
    }
  }
  // Install the scripted app alongside the native one.
  json::Object args;
  args["module"] = apps::LoggingAppModule();
  auto endpoints = json::Parse(apps::LoggingAppEndpointsJson());
  args["endpoints"] = *endpoints;
  if (!h->RunProposal("set_js_app", json::Value(std::move(args)), 20000)) {
    return nullptr;
  }
  return h;
}

// The scripted read endpoint takes the id in a POST body (CCL app).
http::Request MakeScriptedRead(uint64_t seq) {
  http::Request req;
  req.method = "POST";
  req.path = "/app/jslog_read";
  req.body = ToBytes("{\"id\": " + std::to_string(seq % 1000) + "}");
  return req;
}

Cell Measure(ServiceHarness* h, bool scripted) {
  std::string primary = h->Primary()->id();
  Cell cell;
  {
    ClosedLoopDriver driver(&h->env());
    for (int u = 0; u < 4; ++u) {
      driver.AddStream(
          h->UserClient("user" + std::to_string(u), primary),
          [scripted](uint64_t s) {
            return MakeWriteRequest(s,
                                    scripted ? "/app/jslog" : "/app/log");
          },
          kPipeline);
    }
    auto stats = driver.Run(kRequests);
    cell.writes = stats.throughput();
    if (stats.errors > 0) {
      std::fprintf(stderr, "write errors: %llu\n",
                   static_cast<unsigned long long>(stats.errors));
    }
    h->WaitForCommitEverywhere(h->Primary()->last_seqno(), 30000);
  }
  {
    ClosedLoopDriver driver(&h->env());
    for (int i = 0; i < kNodes; ++i) {
      driver.AddStream(
          h->UserClient("user" + std::to_string(i % 4),
                        "n" + std::to_string(i)),
          [scripted](uint64_t s) {
            return scripted ? MakeScriptedRead(s) : MakeReadRequest(s);
          },
          kPipeline);
    }
    cell.reads = driver.Run(kRequests).throughput();
  }
  return cell;
}

// ------------------------------------------------- exec-worker sweep

struct ExecRow {
  uint64_t exec_threads = 0;
  double read_tx_per_s = 0;
  double mixed_tx_per_s = 0;
  double conflict_rate = 0;  // conflicts per executed request, mixed phase
};

// A three-node virtual-mode service with the batch scheduler sized to
// `exec_threads` (replication is not what this sweep measures).
std::unique_ptr<ServiceHarness> BuildExecService(uint64_t exec_threads) {
  auto h = std::make_unique<ServiceHarness>();
  h->SetConfigTweak([exec_threads](node::NodeConfig* cfg) {
    cfg->tee_mode = tee::TeeMode::kVirtual;
    cfg->signature_interval_txs = 100;
    cfg->signature_interval_ms = 50;
    cfg->snapshot_interval_txs = 1u << 30;
    cfg->exec_threads = exec_threads;
  });
  for (int u = 0; u < 4; ++u) h->AddUser("user" + std::to_string(u));
  h->StartGenesis();
  for (int i = 1; i < 3; ++i) {
    if (h->JoinAndTrust("n" + std::to_string(i), 20000) == nullptr) {
      return nullptr;
    }
  }
  return h;
}

// ~1000 chained SHA-256 rounds plus 2ms of modeled service time per
// request, so the handler dominates the session overhead. The modeled
// delay (work_us) is what makes worker overlap visible on a single-core
// host: hashing alone is CPU-bound and would merely time-slice there,
// while on a multicore host both components scale with exec_threads.
http::Request MakeHashReadRequest(uint64_t seq) {
  http::Request req;
  req.method = "GET";
  req.path =
      "/app/hashread?id=" + std::to_string(seq % 1000) + "&work_us=2000";
  return req;
}

// Contended read-modify-write: 8 hot counters shared by every stream, so
// batches carry genuine OCC conflicts for the serial commit point.
http::Request MakeRmwRequest(uint64_t seq) {
  http::Request req;
  req.method = "POST";
  req.path = "/app/rmw";
  req.body = ToBytes("{\"id\": " + std::to_string(seq % 8) + "}");
  return req;
}

ExecRow MeasureExec(ServiceHarness* h, uint64_t exec_threads) {
  ExecRow row;
  row.exec_threads = exec_threads;
  node::Node* primary = h->Primary();
  std::string primary_id = primary->id();

  {
    // Read-only phase: validation-free, should scale with workers.
    ClosedLoopDriver driver(&h->env());
    for (int u = 0; u < 4; ++u) {
      driver.AddStream(h->UserClient("user" + std::to_string(u), primary_id),
                       MakeHashReadRequest, kPipeline);
    }
    auto stats = driver.Run(kRequests);
    row.read_tx_per_s = stats.throughput();
    if (stats.errors > 0) {
      std::fprintf(stderr, "hashread errors: %llu\n",
                   static_cast<unsigned long long>(stats.errors));
    }
  }
  {
    // Mixed phase: half contended writers, half compute reads.
    uint64_t conflicts0 = primary->metrics().ScalarValue("exec.conflicts");
    uint64_t requests0 = primary->metrics().ScalarValue("exec.requests");
    ClosedLoopDriver driver(&h->env());
    for (int u = 0; u < 4; ++u) {
      driver.AddStream(h->UserClient("user" + std::to_string(u), primary_id),
                       u % 2 == 0 ? MakeRmwRequest : MakeHashReadRequest,
                       kPipeline);
    }
    auto stats = driver.Run(kRequests);
    row.mixed_tx_per_s = stats.throughput();
    if (stats.errors > 0) {
      std::fprintf(stderr, "mixed errors: %llu\n",
                   static_cast<unsigned long long>(stats.errors));
    }
    uint64_t conflicts = primary->metrics().ScalarValue("exec.conflicts");
    uint64_t requests = primary->metrics().ScalarValue("exec.requests");
    if (requests > requests0) {
      row.conflict_rate = static_cast<double>(conflicts - conflicts0) /
                          static_cast<double>(requests - requests0);
    }
    h->WaitForCommitEverywhere(h->Primary()->last_seqno(), 30000);
  }
  return row;
}

int RunExecSweep(const std::string& json_path) {
  std::printf("\nExec-worker sweep: wall-clock tx/s, three-node service\n");
  std::printf("%-12s %14s %14s %14s\n", "exec_threads", "read tx/s",
              "mixed tx/s", "conflict rate");

  std::vector<uint64_t> worker_counts =
      SmokeMode() ? std::vector<uint64_t>{1, 4}
                  : std::vector<uint64_t>{1, 2, 4};
  std::vector<ExecRow> rows;
  for (uint64_t workers : worker_counts) {
    auto h = BuildExecService(workers);
    if (h == nullptr) {
      std::fprintf(stderr, "exec service build failed\n");
      return 1;
    }
    Preload(&h->env(), h->UserClient("user0", "n0"));
    ExecRow row = MeasureExec(h.get(), workers);
    std::printf("%-12llu %14.0f %14.0f %14.3f\n",
                static_cast<unsigned long long>(row.exec_threads),
                row.read_tx_per_s, row.mixed_tx_per_s, row.conflict_rate);
    std::fflush(stdout);
    rows.push_back(row);
  }

  json::Array out_rows;
  for (const ExecRow& row : rows) {
    json::Object o;
    o["exec_threads"] = row.exec_threads;
    o["read_tx_per_s"] = row.read_tx_per_s;
    o["mixed_tx_per_s"] = row.mixed_tx_per_s;
    o["conflict_rate"] = row.conflict_rate;
    out_rows.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["smoke"] = SmokeMode();
  root["exec"] = json::Value(std::move(out_rows));
  std::ofstream f(json_path);
  f << json::Value(std::move(root)).DumpPretty() << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main(int argc, char** argv) {
  using namespace ccf::bench;
  using ccf::tee::TeeMode;

  std::printf("Table 5: throughput (tx/s) writes/reads, five-node service\n");
  std::printf("%-6s %24s %24s\n", "", "SGX-sim", "Virtual");

  for (bool scripted : {false, true}) {
    Cell cells[2];
    int col = 0;
    for (TeeMode mode : {TeeMode::kSgxSim, TeeMode::kVirtual}) {
      auto h = BuildService(mode);
      if (h == nullptr) {
        std::fprintf(stderr, "service build failed\n");
        return 1;
      }
      // Preload via the native endpoint (same map as the scripted app).
      Preload(&h->env(), h->UserClient("user0", "n0"));
      cells[col++] = Measure(h.get(), scripted);
    }
    std::printf("%-6s %11.0f / %-11.0f %11.0f / %-11.0f\n",
                scripted ? "CCL" : "C++", cells[0].writes, cells[0].reads,
                cells[1].writes, cells[1].reads);
    std::fflush(stdout);
  }

  return RunExecSweep(argc > 1 ? argv[1] : "BENCH_exec.json");
}
