// Table 5: throughput (tx/s) for writes/reads on a five-node service,
// comparing the C++ application with the scripted (CCL, the paper's "JS")
// application, in SGX-sim and virtual TEE modes.
//
// Expected shape (paper Table 5): C++ >> scripted, virtual > sgx-sim.
// |      |   SGX-sim        |   Virtual        |
// | C++  |  W/s  /  R/s     |  W/s  /  R/s     |
// | CCL  |  W/s  /  R/s     |  W/s  /  R/s     |

#include <cstdio>

#include "bench/bench_util.h"

namespace ccf::bench {
namespace {

const uint64_t kRequests = SmokeMode() ? 300 : 2500;
constexpr int kPipeline = 64;
constexpr int kNodes = 5;

struct Cell {
  double writes = 0;
  double reads = 0;
};

std::unique_ptr<ServiceHarness> BuildService(tee::TeeMode mode) {
  auto h = std::make_unique<ServiceHarness>();
  h->SetConfigTweak([mode](node::NodeConfig* cfg) {
    cfg->tee_mode = mode;
    cfg->signature_interval_txs = 100;
    cfg->signature_interval_ms = 50;
    cfg->snapshot_interval_txs = 1u << 30;
  });
  for (int u = 0; u < 4; ++u) h->AddUser("user" + std::to_string(u));
  h->StartGenesis();
  for (int i = 1; i < kNodes; ++i) {
    if (h->JoinAndTrust("n" + std::to_string(i), 20000) == nullptr) {
      return nullptr;
    }
  }
  // Install the scripted app alongside the native one.
  json::Object args;
  args["module"] = node::LoggingAppModule();
  auto endpoints = json::Parse(node::LoggingAppEndpointsJson());
  args["endpoints"] = *endpoints;
  if (!h->RunProposal("set_js_app", json::Value(std::move(args)), 20000)) {
    return nullptr;
  }
  return h;
}

// The scripted read endpoint takes the id in a POST body (CCL app).
http::Request MakeScriptedRead(uint64_t seq) {
  http::Request req;
  req.method = "POST";
  req.path = "/app/jslog_read";
  req.body = ToBytes("{\"id\": " + std::to_string(seq % 1000) + "}");
  return req;
}

Cell Measure(ServiceHarness* h, bool scripted) {
  std::string primary = h->Primary()->id();
  Cell cell;
  {
    ClosedLoopDriver driver(&h->env());
    for (int u = 0; u < 4; ++u) {
      driver.AddStream(
          h->UserClient("user" + std::to_string(u), primary),
          [scripted](uint64_t s) {
            return MakeWriteRequest(s,
                                    scripted ? "/app/jslog" : "/app/log");
          },
          kPipeline);
    }
    auto stats = driver.Run(kRequests);
    cell.writes = stats.throughput();
    if (stats.errors > 0) {
      std::fprintf(stderr, "write errors: %llu\n",
                   static_cast<unsigned long long>(stats.errors));
    }
    h->WaitForCommitEverywhere(h->Primary()->last_seqno(), 30000);
  }
  {
    ClosedLoopDriver driver(&h->env());
    for (int i = 0; i < kNodes; ++i) {
      driver.AddStream(
          h->UserClient("user" + std::to_string(i % 4),
                        "n" + std::to_string(i)),
          [scripted](uint64_t s) {
            return scripted ? MakeScriptedRead(s) : MakeReadRequest(s);
          },
          kPipeline);
    }
    cell.reads = driver.Run(kRequests).throughput();
  }
  return cell;
}

}  // namespace
}  // namespace ccf::bench

int main() {
  using namespace ccf::bench;
  using ccf::tee::TeeMode;

  std::printf("Table 5: throughput (tx/s) writes/reads, five-node service\n");
  std::printf("%-6s %24s %24s\n", "", "SGX-sim", "Virtual");

  for (bool scripted : {false, true}) {
    Cell cells[2];
    int col = 0;
    for (TeeMode mode : {TeeMode::kSgxSim, TeeMode::kVirtual}) {
      auto h = BuildService(mode);
      if (h == nullptr) {
        std::fprintf(stderr, "service build failed\n");
        return 1;
      }
      // Preload via the native endpoint (same map as the scripted app).
      Preload(&h->env(), h->UserClient("user0", "n0"));
      cells[col++] = Measure(h.get(), scripted);
    }
    std::printf("%-6s %11.0f / %-11.0f %11.0f / %-11.0f\n",
                scripted ? "CCL" : "C++", cells[0].writes, cells[0].reads,
                cells[1].writes, cells[1].reads);
    std::fflush(stdout);
  }
  return 0;
}
