// Figure 8: impact of signature transactions.
//   Left/center: per-request response time with the signature interval set
//   to 100 — most requests are fast, with a latency spike every ~100
//   requests when a signature transaction is produced (Merkle root +
//   Schnorr signature + extra ledger entry).
//   Right: write throughput as a function of the signature interval — the
//   tradeoff between time-to-commit and throughput (paper §7).
//
// One node, one user, as in the paper ("most other sources of latency
// variance removed"). Response times are wall-clock (the virtual network
// costs nothing here; the measured work is real).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"

namespace ccf::bench {
namespace {

std::unique_ptr<ServiceHarness> BuildSingleNode(uint64_t sig_interval) {
  auto h = std::make_unique<ServiceHarness>();
  h->SetConfigTweak([sig_interval](node::NodeConfig* cfg) {
    cfg->tee_mode = tee::TeeMode::kVirtual;
    cfg->signature_interval_txs = sig_interval;
    cfg->signature_interval_ms = 1u << 30;  // count-triggered only
    cfg->snapshot_interval_txs = 1u << 30;
  });
  h->AddUser("user0");
  h->StartGenesis();
  return h;
}

void LatencyTrace() {
  std::printf(
      "Figure 8 (left & center): response time per request, signature "
      "interval = 100\n");
  auto h = BuildSingleNode(100);
  node::Client* client = h->UserClient("user0", "n0");

  constexpr int kWarmup = 50;
  constexpr int kSamples = 400;
  std::vector<double> latencies_us;
  for (int i = 0; i < kWarmup + kSamples; ++i) {
    http::Request req = MakeWriteRequest(i);
    auto start = std::chrono::steady_clock::now();
    auto resp = client->Call(std::move(req), 10000);
    auto end = std::chrono::steady_clock::now();
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "request %d failed\n", i);
      return;
    }
    if (i >= kWarmup) {
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
    }
  }

  // Separate the signature-adjacent requests (every 100th) from the rest.
  std::vector<double> normal, spikes;
  std::vector<double> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  double p90 = sorted[sorted.size() * 90 / 100];
  for (double l : latencies_us) {
    (l > p90 ? spikes : normal).push_back(l);
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0 : s / v.size();
  };
  std::printf("  samples: %zu\n", latencies_us.size());
  std::printf("  p50 response time:        %8.1f us\n",
              sorted[sorted.size() / 2]);
  std::printf("  p90 response time:        %8.1f us\n", p90);
  std::printf("  p99 response time:        %8.1f us\n",
              sorted[sorted.size() * 99 / 100]);
  std::printf("  mean below p90 (normal):  %8.1f us\n", mean(normal));
  std::printf("  mean above p90 (spikes):  %8.1f us  (signature overhead)\n",
              mean(spikes));
  std::printf("  spike/normal ratio:       %8.2fx\n",
              mean(normal) > 0 ? mean(spikes) / mean(normal) : 0);

  // Compact trace (mirrors the scatter plot): one char per request,
  // '.' <= p90, '#' > p90 — the '#'s land once per signature interval.
  std::printf("  trace: ");
  for (size_t i = 0; i < latencies_us.size(); ++i) {
    std::putchar(latencies_us[i] > p90 ? '#' : '.');
    if ((i + 1) % 100 == 0) std::printf("\n         ");
  }
  std::printf("\n");
}

void ThroughputVsInterval() {
  std::printf(
      "\nFigure 8 (right): write throughput vs signature interval\n");
  std::printf("%-12s %16s\n", "interval", "writes (tx/s)");
  for (uint64_t interval : {1u, 2u, 5u, 10u, 50u, 100u, 500u}) {
    auto h = BuildSingleNode(interval);
    ClosedLoopDriver driver(&h->env());
    for (int c = 0; c < 2; ++c) {
      driver.AddStream(h->UserClient("user0", "n0"),
                       [](uint64_t s) { return MakeWriteRequest(s); }, 32);
    }
    double tput = driver.Run(3000).throughput();
    std::printf("%-12llu %16.0f\n", static_cast<unsigned long long>(interval),
                tput);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace ccf::bench

int main() {
  ccf::bench::LatencyTrace();
  ccf::bench::ThroughputVsInterval();
  return 0;
}
