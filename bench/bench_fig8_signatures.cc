// Figure 8: impact of signature transactions.
//   Left/center: per-request response time with the signature interval set
//   to 100 — most requests are fast, with a latency spike every ~100
//   requests when a signature transaction is produced (Merkle root +
//   Schnorr signature + extra ledger entry). The crypto offload pipeline
//   (tee::WorkerPool) moves the sign off the request path; the sweep below
//   measures the spike with and without offload.
//   Right: write throughput as a function of the signature interval — the
//   tradeoff between time-to-commit and throughput (paper §7).
//   Bottom: ledger audit replay, serial vs the batched kernels
//   (MerkleTree::AppendBatch + crypto::VerifyBatch).
//
// One node, one user, as in the paper ("most other sources of latency
// variance removed"). Response times are wall-clock (the virtual network
// costs nothing here; the measured work is real).
//
// Results are also written to BENCH_signatures.json (current directory, or
// the path given as the first non-flag argument) so scripts/bench_diff.py
// can compare runs. Pass --smoke or set CCF_BENCH_SMOKE=1 for a fast run.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "node/audit.h"

namespace ccf::bench {
namespace {

struct OffloadConfig {
  size_t worker_threads = 0;
  bool worker_async = false;
  const char* label = "";
};

constexpr OffloadConfig kOffloadSweep[] = {
    {0, false, "sync (worker_threads=0)"},
    {2, false, "offload blocking (worker_threads=2)"},
    {2, true, "offload async (worker_threads=2, worker_async)"},
};

std::unique_ptr<ServiceHarness> BuildSingleNode(uint64_t sig_interval,
                                                const OffloadConfig& off) {
  auto h = std::make_unique<ServiceHarness>();
  h->SetConfigTweak([sig_interval, off](node::NodeConfig* cfg) {
    cfg->tee_mode = tee::TeeMode::kVirtual;
    cfg->signature_interval_txs = sig_interval;
    cfg->signature_interval_ms = 1u << 30;  // count-triggered only
    cfg->snapshot_interval_txs = 1u << 30;
    cfg->worker_threads = off.worker_threads;
    cfg->worker_async = off.worker_async;
  });
  h->AddUser("user0");
  h->StartGenesis();
  return h;
}

struct LatencyStats {
  size_t samples = 0;
  double p50 = 0, p90 = 0, p99 = 0;
  double mean_normal = 0, mean_spike = 0, ratio = 0;
  uint64_t signs = 0, signs_deferred = 0;
};

LatencyStats LatencyTrace(const OffloadConfig& off, int warmup, int samples,
                          bool print_trace) {
  std::printf("\nFigure 8 (left & center): response time per request, "
              "signature interval = 100, %s\n", off.label);
  auto h = BuildSingleNode(100, off);
  node::Client* client = h->UserClient("user0", "n0");

  LatencyStats out;
  std::vector<double> latencies_us;
  for (int i = 0; i < warmup + samples; ++i) {
    http::Request req = MakeWriteRequest(i);
    auto start = std::chrono::steady_clock::now();
    auto resp = client->Call(std::move(req), 10000);
    auto end = std::chrono::steady_clock::now();
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "request %d failed\n", i);
      return out;
    }
    if (i >= warmup) {
      latencies_us.push_back(
          std::chrono::duration<double, std::micro>(end - start).count());
    }
  }

  // Separate the signature-adjacent requests (every 100th) from the rest.
  std::vector<double> normal, spikes;
  std::vector<double> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  double p90 = sorted[sorted.size() * 90 / 100];
  for (double l : latencies_us) {
    (l > p90 ? spikes : normal).push_back(l);
  }
  auto mean = [](const std::vector<double>& v) {
    double s = 0;
    for (double x : v) s += x;
    return v.empty() ? 0 : s / v.size();
  };
  out.samples = latencies_us.size();
  out.p50 = sorted[sorted.size() / 2];
  out.p90 = p90;
  out.p99 = sorted[sorted.size() * 99 / 100];
  out.mean_normal = mean(normal);
  out.mean_spike = mean(spikes);
  out.ratio = out.mean_normal > 0 ? out.mean_spike / out.mean_normal : 0;
  const auto& ops = h->node("n0")->crypto_ops();
  out.signs = ops.signs;
  out.signs_deferred = ops.signs_deferred;

  std::printf("  samples: %zu\n", out.samples);
  std::printf("  p50 response time:        %8.1f us\n", out.p50);
  std::printf("  p90 response time:        %8.1f us\n", out.p90);
  std::printf("  p99 response time:        %8.1f us\n", out.p99);
  std::printf("  mean below p90 (normal):  %8.1f us\n", out.mean_normal);
  std::printf("  mean above p90 (spikes):  %8.1f us  (signature overhead)\n",
              out.mean_spike);
  std::printf("  spike/normal ratio:       %8.2fx\n", out.ratio);
  std::printf("  signatures: %llu emitted, %llu via worker pool\n",
              static_cast<unsigned long long>(out.signs),
              static_cast<unsigned long long>(out.signs_deferred));

  if (print_trace) {
    // Compact trace (mirrors the scatter plot): one char per request,
    // '.' <= p90, '#' > p90 — the '#'s land once per signature interval.
    std::printf("  trace: ");
    for (size_t i = 0; i < latencies_us.size(); ++i) {
      std::putchar(latencies_us[i] > p90 ? '#' : '.');
      if ((i + 1) % 100 == 0) std::printf("\n         ");
    }
    std::printf("\n");
  }
  return out;
}

struct ThroughputPoint {
  size_t worker_threads = 0;
  bool worker_async = false;
  uint64_t interval = 0;
  double tx_per_s = 0;
};

std::vector<ThroughputPoint> ThroughputVsInterval(
    const std::vector<uint64_t>& intervals, uint64_t total_requests) {
  std::vector<ThroughputPoint> points;
  std::printf(
      "\nFigure 8 (right): write throughput vs signature interval\n");
  for (const OffloadConfig& off : kOffloadSweep) {
    std::printf("  %s\n", off.label);
    std::printf("  %-12s %16s\n", "interval", "writes (tx/s)");
    for (uint64_t interval : intervals) {
      auto h = BuildSingleNode(interval, off);
      ClosedLoopDriver driver(&h->env());
      for (int c = 0; c < 2; ++c) {
        driver.AddStream(h->UserClient("user0", "n0"),
                         [](uint64_t s) { return MakeWriteRequest(s); }, 32);
      }
      double tput = driver.Run(total_requests).throughput();
      std::printf("  %-12llu %16.0f\n",
                  static_cast<unsigned long long>(interval), tput);
      std::fflush(stdout);
      points.push_back({off.worker_threads, off.worker_async, interval, tput});
    }
  }
  return points;
}

struct AuditStats {
  uint64_t entries = 0;
  double serial_ms = 0, batch_ms = 0, speedup = 0;
  uint64_t batched_verifications = 0;
};

AuditStats AuditReplay(uint64_t writes) {
  std::printf("\nLedger audit replay: serial vs batched kernels\n");
  AuditStats out;
  // Dense signatures so VerifyBatch has material to chew on.
  auto h = BuildSingleNode(10, kOffloadSweep[0]);
  ClosedLoopDriver driver(&h->env());
  driver.AddStream(h->UserClient("user0", "n0"),
                   [](uint64_t s) { return MakeWriteRequest(s); }, 32);
  driver.Run(writes);
  h->env().Step(50);  // let the trailing signature land
  const ledger::Ledger& ledger = h->node("n0")->host_ledger();
  out.entries = ledger.entries().size();

  auto time_audit = [&](node::AuditOptions opt) {
    auto start = std::chrono::steady_clock::now();
    auto report = node::AuditLedger(ledger, std::nullopt, opt);
    auto end = std::chrono::steady_clock::now();
    if (!report.ok()) {
      std::fprintf(stderr, "audit failed: %s\n",
                   report.status().ToString().c_str());
      return std::make_pair(0.0, node::AuditReport{});
    }
    return std::make_pair(
        std::chrono::duration<double, std::milli>(end - start).count(),
        report.take());
  };

  // Best of 3 each, interleaved, to shake off cache noise.
  for (int rep = 0; rep < 3; ++rep) {
    auto [serial_ms, serial_report] = time_audit({.batch = false});
    auto [batch_ms, batch_report] = time_audit({.batch = true});
    if (serial_ms == 0 || batch_ms == 0) return out;
    if (rep == 0 || serial_ms < out.serial_ms) out.serial_ms = serial_ms;
    if (rep == 0 || batch_ms < out.batch_ms) out.batch_ms = batch_ms;
    out.batched_verifications = batch_report.batched_verifications;
    if (batch_report.batched_verifications == 0) {
      std::fprintf(stderr,
                   "ERROR: batched audit did not engage VerifyBatch\n");
      return out;
    }
    if (serial_report.batched_verifications != 0) {
      std::fprintf(stderr, "ERROR: serial audit used VerifyBatch\n");
      return out;
    }
  }
  out.speedup = out.batch_ms > 0 ? out.serial_ms / out.batch_ms : 0;
  std::printf("  entries audited:       %llu\n",
              static_cast<unsigned long long>(out.entries));
  std::printf("  serial replay:         %8.2f ms\n", out.serial_ms);
  std::printf("  batched replay:        %8.2f ms\n", out.batch_ms);
  std::printf("  speedup:               %8.2fx\n", out.speedup);
  std::printf("  batched verifications: %llu\n",
              static_cast<unsigned long long>(out.batched_verifications));
  return out;
}

int RunAll(const std::string& json_path, bool smoke) {
  const int warmup = smoke ? 10 : 50;
  const int samples = smoke ? 150 : 400;
  std::vector<uint64_t> intervals =
      smoke ? std::vector<uint64_t>{1, 10, 100}
            : std::vector<uint64_t>{1, 2, 5, 10, 50, 100, 500};
  const uint64_t tput_requests = smoke ? 300 : 3000;
  const uint64_t audit_writes = smoke ? 300 : 2000;

  json::Object root;
  root["smoke"] = smoke;

  json::Array latency;
  bool deferred_engaged = false;
  double sync_ratio = 0, async_ratio = 0;
  for (const OffloadConfig& off : kOffloadSweep) {
    LatencyStats s = LatencyTrace(off, warmup, samples, !smoke);
    if (s.samples == 0) return 1;
    if (off.worker_threads > 0 && s.signs_deferred > 0) {
      deferred_engaged = true;
    }
    if (off.worker_threads == 0) sync_ratio = s.ratio;
    if (off.worker_async) async_ratio = s.ratio;
    json::Object row;
    row["label"] = off.label;
    row["worker_threads"] = static_cast<uint64_t>(off.worker_threads);
    row["worker_async"] = off.worker_async;
    row["samples"] = static_cast<uint64_t>(s.samples);
    row["p50_us"] = s.p50;
    row["p90_us"] = s.p90;
    row["p99_us"] = s.p99;
    row["mean_normal_us"] = s.mean_normal;
    row["mean_spike_us"] = s.mean_spike;
    row["spike_ratio"] = s.ratio;
    row["signs"] = s.signs;
    row["signs_deferred"] = s.signs_deferred;
    latency.push_back(json::Value(std::move(row)));
  }
  root["latency"] = std::move(latency);
  if (!deferred_engaged) {
    std::fprintf(stderr,
                 "ERROR: worker pool never signed (signs_deferred == 0 in "
                 "every worker_threads>0 config)\n");
    return 1;
  }
  std::printf("\n  spike ratio sync %.2fx -> async offload %.2fx\n",
              sync_ratio, async_ratio);

  json::Array tput;
  for (const ThroughputPoint& p :
       ThroughputVsInterval(intervals, tput_requests)) {
    json::Object row;
    row["worker_threads"] = static_cast<uint64_t>(p.worker_threads);
    row["worker_async"] = p.worker_async;
    row["interval"] = p.interval;
    row["tx_per_s"] = p.tx_per_s;
    tput.push_back(json::Value(std::move(row)));
  }
  root["throughput"] = std::move(tput);

  AuditStats a = AuditReplay(audit_writes);
  if (a.batched_verifications == 0) return 1;
  json::Object audit;
  audit["entries"] = a.entries;
  audit["serial_ms"] = a.serial_ms;
  audit["batch_ms"] = a.batch_ms;
  audit["speedup"] = a.speedup;
  audit["batched_verifications"] = a.batched_verifications;
  root["audit_replay"] = std::move(audit);

  std::string dumped = json::Value(std::move(root)).DumpPretty();
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(dumped.data(), 1, dumped.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nwrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main(int argc, char** argv) {
  bool smoke = ccf::bench::SmokeMode();
  std::string json_path = "BENCH_signatures.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  return ccf::bench::RunAll(json_path, smoke);
}
