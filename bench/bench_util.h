// Shared benchmark driver: closed-loop clients over a simulated CCF
// service, measuring wall-clock throughput (the simulation's virtual time
// costs nothing; all real work — crypto, consensus, KV — happens on the
// wall clock).

#ifndef CCF_BENCH_BENCH_UTIL_H_
#define CCF_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "tests/service_harness.h"

namespace ccf::bench {

using testing::FastNodeConfig;
using testing::ServiceHarness;

// CCF_BENCH_SMOKE=1 shrinks every benchmark to a seconds-scale sanity run;
// the bench-smoke ctest label sets it so `ctest` exercises each binary on
// every build without paying for full measurement runs.
inline bool SmokeMode() {
  const char* v = std::getenv("CCF_BENCH_SMOKE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

inline node::NodeConfig BenchNodeConfig(const std::string& id,
                                        tee::TeeMode mode,
                                        uint64_t sig_interval = 100) {
  node::NodeConfig cfg = testing::FastNodeConfig(id);
  cfg.tee_mode = mode;
  cfg.signature_interval_txs = sig_interval;
  cfg.signature_interval_ms = 50;
  cfg.snapshot_interval_txs = 1u << 30;  // no snapshots during benches
  return cfg;
}

// A closed-loop workload: `pipeline` requests in flight per client; each
// completion immediately issues the next request (paper §7: "closed loop
// with up to 1k concurrent requests"). All in-flight requests are drained
// before Run returns, so the driver can be reused safely.
class ClosedLoopDriver {
 public:
  explicit ClosedLoopDriver(sim::Environment* env) : env_(env) {}

  void AddStream(node::Client* client,
                 std::function<http::Request(uint64_t seq)> make_request,
                 int pipeline) {
    streams_.push_back({client, std::move(make_request), pipeline});
  }

  struct Stats {
    uint64_t completed = 0;
    uint64_t errors = 0;
    double wall_seconds = 0;
    double throughput() const {
      return wall_seconds > 0 ? completed / wall_seconds : 0;
    }
  };

  // Runs until `total_requests` complete across all streams.
  Stats Run(uint64_t total_requests) {
    Stats stats;
    uint64_t issued = 0;
    std::vector<size_t> reissues;

    auto issue = [&](size_t stream_idx) {
      Stream& s = streams_[stream_idx];
      uint64_t seq = issued++;
      s.client->SendRequest(
          s.make_request(seq),
          [&stats, &reissues, stream_idx](Result<http::Response> r) {
            if (!r.ok() || r->status >= 400) ++stats.errors;
            ++stats.completed;
            reissues.push_back(stream_idx);
          });
    };

    for (size_t i = 0; i < streams_.size(); ++i) {
      for (int j = 0; j < streams_[i].pipeline && issued < total_requests;
           ++j) {
        issue(i);
      }
    }

    auto start = std::chrono::steady_clock::now();
    auto end = start;
    bool timed = false;
    // Keep stepping until every issued request has completed (drained),
    // stopping the clock when the target completes.
    while (stats.completed < issued || issued < total_requests) {
      env_->Step(1);
      if (!timed && stats.completed >= total_requests) {
        end = std::chrono::steady_clock::now();
        timed = true;
      }
      std::vector<size_t> todo = std::move(reissues);
      reissues.clear();
      for (size_t idx : todo) {
        if (issued < total_requests) issue(idx);
      }
    }
    if (!timed) end = std::chrono::steady_clock::now();
    stats.wall_seconds = std::chrono::duration<double>(end - start).count();
    return stats;
  }

 private:
  struct Stream {
    node::Client* client;
    std::function<http::Request(uint64_t)> make_request;
    int pipeline;
  };

  sim::Environment* env_;
  std::vector<Stream> streams_;
};

inline http::Request MakeWriteRequest(uint64_t seq,
                                      const char* path = "/app/log") {
  http::Request req;
  req.method = "POST";
  req.path = path;
  // Paper §7: messages are 20 characters each.
  req.body = ToBytes("{\"id\": " + std::to_string(seq % 1000) +
                     ", \"msg\": \"01234567890123456789\"}");
  return req;
}

inline http::Request MakeReadRequest(uint64_t seq,
                                     const char* path = "/app/log") {
  http::Request req;
  req.method = "GET";
  req.path = std::string(path) + "?id=" + std::to_string(seq % 1000);
  return req;
}

// Pre-populates message ids [0, 1000) so reads always hit.
inline void Preload(sim::Environment* env, node::Client* client) {
  ClosedLoopDriver driver(env);
  driver.AddStream(client, [](uint64_t s) { return MakeWriteRequest(s); },
                   32);
  auto stats = driver.Run(1000);
  if (stats.errors > 0) {
    std::fprintf(stderr, "preload saw %llu errors\n",
                 static_cast<unsigned long long>(stats.errors));
  }
}

}  // namespace ccf::bench

#endif  // CCF_BENCH_BENCH_UTIL_H_
