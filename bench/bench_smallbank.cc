// SmallBank benchmark (DESIGN.md §14): the classic contended banking mix
// (transact_savings / deposit_checking / send_payment / write_check /
// amalgamate / balance) driven closed-loop against a single-node service,
// sweeping exec_threads x account skew.
//
// Skew is the Zipf exponent over account ids: 0.0 spreads traffic
// uniformly, 0.9+ concentrates it on a handful of hot accounts so
// speculative batches collide at the serial OCC commit point
// (DESIGN.md §12) and losers re-execute. Expected shape: conflict_rate
// grows with skew; exec_threads=4 beats 0 at low skew and the gap narrows
// as contention serializes the workload.
//
// Writes BENCH_smallbank.json (argv[1] overrides) for
// scripts/bench_diff.py:
//   {"smallbank": [{exec_threads, skew, tx_per_s, conflict_rate,
//                   abort_rate}, ...]}

#include <cstdio>
#include <fstream>
#include <memory>

#include "apps/smallbank.h"
#include "apps/workload.h"
#include "bench/bench_util.h"
#include "crypto/hmac.h"

namespace ccf::bench {
namespace {

const uint64_t kRequests = SmokeMode() ? 300 : 2500;
constexpr int kPipeline = 64;
constexpr int kAccounts = 100;
constexpr int kStreams = 4;

struct SbRow {
  uint64_t exec_threads = 0;
  double skew = 0;
  double tx_per_s = 0;
  double conflict_rate = 0;  // OCC conflicts per executed request
  double abort_rate = 0;     // application 4xx (insufficient funds) rate
};

std::unique_ptr<ServiceHarness> BuildService(uint64_t exec_threads,
                                             apps::SmallBankApp* app) {
  auto h = std::make_unique<ServiceHarness>();
  h->SetConfigTweak([exec_threads](node::NodeConfig* cfg) {
    cfg->tee_mode = tee::TeeMode::kVirtual;
    cfg->signature_interval_txs = 100;
    cfg->signature_interval_ms = 50;
    cfg->snapshot_interval_txs = 1u << 30;
    cfg->exec_threads = exec_threads;
  });
  for (int u = 0; u < kStreams; ++u) h->AddUser("user" + std::to_string(u));
  if (h->StartGenesis(true, app) == nullptr) return nullptr;
  return h;
}

http::Request SbPost(const std::string& path, json::Object body) {
  http::Request req;
  req.method = "POST";
  req.path = path;
  req.body = ToBytes(json::Value(std::move(body)).Dump());
  req.headers["content-type"] = "application/json";
  return req;
}

// The standard SmallBank mix: 85% writes over five transaction types,
// 15% balance reads, accounts drawn from the (possibly skewed) sampler.
http::Request DrawRequest(crypto::Drbg* drbg,
                          const apps::ZipfianSampler& zipf) {
  int64_t a = static_cast<int64_t>(zipf.Sample(drbg));
  int64_t b = static_cast<int64_t>(zipf.Sample(drbg));
  int64_t amount = static_cast<int64_t>(drbg->Uniform(20)) + 1;
  switch (drbg->Uniform(20)) {
    case 0: case 1: case 2: {  // 15% amalgamate
      json::Object body;
      body["from"] = a;
      body["to"] = b;
      return SbPost("/app/sb/amalgamate", std::move(body));
    }
    case 3: case 4: case 5: case 6: {  // 20% write_check
      json::Object body;
      body["account"] = a;
      body["amount"] = amount;
      return SbPost("/app/sb/write_check", std::move(body));
    }
    case 7: case 8: case 9: case 10: case 11: {  // 25% send_payment
      json::Object body;
      body["from"] = a;
      body["to"] = b;
      body["amount"] = amount;
      return SbPost("/app/sb/send_payment", std::move(body));
    }
    case 12: case 13: case 14: {  // 15% transact_savings
      json::Object body;
      body["account"] = a;
      body["amount"] = (drbg->Uniform(2) == 0) ? amount : -amount;
      return SbPost("/app/sb/transact_savings", std::move(body));
    }
    case 15: case 16: {  // 10% deposit_checking
      json::Object body;
      body["account"] = a;
      body["amount"] = amount;
      return SbPost("/app/sb/deposit_checking", std::move(body));
    }
    default: {  // 15% balance read
      http::Request req;
      req.method = "GET";
      req.path = "/app/sb/balance?account=" + std::to_string(a);
      return req;
    }
  }
}

int Measure(uint64_t exec_threads, double skew, SbRow* row) {
  apps::SmallBankApp app;
  auto h = BuildService(exec_threads, &app);
  if (h == nullptr) {
    std::fprintf(stderr, "service build failed\n");
    return 1;
  }
  node::Node* n0 = h->node("n0");
  node::Client* setup = h->UserClient("user0");
  json::Object init;
  init["from"] = 0;
  init["to"] = kAccounts;
  init["savings"] = 10000;
  init["checking"] = 10000;
  auto created = setup->Call(SbPost("/app/sb/create_accounts",
                                    std::move(init)));
  if (!created.ok() || created->status != 200) {
    std::fprintf(stderr, "account setup failed\n");
    return 1;
  }

  row->exec_threads = exec_threads;
  row->skew = skew;
  auto zipf = std::make_shared<apps::ZipfianSampler>(kAccounts, skew);
  uint64_t conflicts0 = n0->metrics().ScalarValue("exec.conflicts");
  uint64_t requests0 = n0->metrics().ScalarValue("exec.requests");

  ClosedLoopDriver driver(&h->env());
  for (int u = 0; u < kStreams; ++u) {
    auto drbg = std::make_shared<crypto::Drbg>(
        "bench-smallbank", exec_threads * 1000 + u);
    driver.AddStream(h->UserClient("user" + std::to_string(u)),
                     [drbg, zipf](uint64_t) {
                       return DrawRequest(drbg.get(), *zipf);
                     },
                     kPipeline);
  }
  auto stats = driver.Run(kRequests);
  row->tx_per_s = stats.throughput();
  // Every account exists and bodies conform to the schemas, so a >= 400
  // response is an application abort (409 insufficient funds).
  if (stats.completed > 0) {
    row->abort_rate = static_cast<double>(stats.errors) /
                      static_cast<double>(stats.completed);
  }
  uint64_t conflicts = n0->metrics().ScalarValue("exec.conflicts");
  uint64_t requests = n0->metrics().ScalarValue("exec.requests");
  if (requests > requests0) {
    row->conflict_rate = static_cast<double>(conflicts - conflicts0) /
                         static_cast<double>(requests - requests0);
  }
  h->WaitForCommitEverywhere(n0->last_seqno(), 30000);
  return 0;
}

int RunSweep(const std::string& json_path) {
  std::printf("SmallBank: closed-loop tx/s, single node, %d accounts\n",
              kAccounts);
  std::printf("%-12s %6s %14s %14s %12s\n", "exec_threads", "skew",
              "tx/s", "conflict rate", "abort rate");

  std::vector<SbRow> rows;
  for (uint64_t exec_threads : {uint64_t{0}, uint64_t{4}}) {
    for (double skew : {0.0, 0.9, 1.2}) {
      SbRow row;
      if (Measure(exec_threads, skew, &row) != 0) return 1;
      std::printf("%-12llu %6.1f %14.0f %14.3f %12.3f\n",
                  static_cast<unsigned long long>(row.exec_threads),
                  row.skew, row.tx_per_s, row.conflict_rate,
                  row.abort_rate);
      std::fflush(stdout);
      rows.push_back(row);
    }
  }

  json::Array out_rows;
  for (const SbRow& row : rows) {
    json::Object o;
    o["exec_threads"] = row.exec_threads;
    o["skew"] = row.skew;
    o["tx_per_s"] = row.tx_per_s;
    o["conflict_rate"] = row.conflict_rate;
    o["abort_rate"] = row.abort_rate;
    out_rows.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["smoke"] = SmokeMode();
  root["smallbank"] = json::Value(std::move(out_rows));
  std::ofstream f(json_path);
  f << json::Value(std::move(root)).DumpPretty() << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main(int argc, char** argv) {
  return ccf::bench::RunSweep(argc > 1 ? argv[1] : "BENCH_smallbank.json");
}
