// bench_net: closed-loop load against a LIVE 3-node cluster (ISSUE
// tentpole). Unlike every other bench in this directory, nothing here is
// simulated: real TCP over loopback, real epoll IO threads, wall-clock
// ticks. Each client connection keeps a fixed pipeline of requests in
// flight and immediately replaces every completed one, so the cluster is
// measured at sustained closed-loop load, not burst.
//
// Output: per-(connections, pipeline) rows of throughput and latency
// percentiles, written to BENCH_net.json (first argument overrides the
// path) for scripts/bench_diff.py. CCF_BENCH_SMOKE=1 or --smoke shrinks
// the sweep and duration for CI.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "json/json.h"
#include "tests/live_harness.h"

namespace ccf::bench {
namespace {

using testing::LiveServiceHarness;
using testing::TestUser;

bool SmokeMode(int argc, char** argv) {
  const char* env = std::getenv("CCF_BENCH_SMOKE");
  if (env != nullptr && std::strcmp(env, "0") != 0) return true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

uint64_t NowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct NetRow {
  uint64_t connections = 0;
  uint64_t pipeline = 0;
  double tx_per_s = 0;
  double p50_us = 0;
  double p99_us = 0;
};

double Percentile(std::vector<uint64_t>* lat, double p) {
  if (lat->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(lat->size() - 1));
  std::nth_element(lat->begin(), lat->begin() + static_cast<ptrdiff_t>(idx),
                   lat->end());
  return static_cast<double>((*lat)[idx]);
}

// One closed-loop connection: `pipeline` requests always in flight.
void RunConnection(const crypto::PublicKeyBytes& identity, TestUser* user,
                   uint16_t port, int conn_idx, uint64_t pipeline,
                   uint64_t duration_ms, std::vector<uint64_t>* latencies,
                   std::atomic<uint64_t>* completed,
                   std::atomic<bool>* failed) {
  host::LiveClient client("bench-c" + std::to_string(conn_idx), identity,
                          &user->key, user->cert);
  if (!client.Connect("127.0.0.1", port, 5000).ok()) {
    failed->store(true);
    return;
  }
  const uint64_t key = 1000 + static_cast<uint64_t>(conn_idx);
  uint64_t seq = 0;
  bool dead = false;

  // Self-replacing request: the completion callback issues the successor,
  // keeping the pipeline depth constant without a scheduler.
  std::function<void()> issue = [&] {
    json::Object body;
    body["id"] = key;
    body["msg"] = "p" + std::to_string(seq++);
    http::Request req;
    req.method = "POST";
    req.path = "/app/log";
    req.headers["content-type"] = "application/json";
    req.body = ToBytes(json::Value(std::move(body)).Dump());
    uint64_t sent_us = NowUs();
    client.SendRequest(std::move(req), [&, sent_us](
                                           Result<http::Response> resp) {
      if (!resp.ok() || resp->status != 200) {
        dead = true;
        return;
      }
      latencies->push_back(NowUs() - sent_us);
      completed->fetch_add(1, std::memory_order_relaxed);
      issue();
    });
  };
  for (uint64_t i = 0; i < pipeline; ++i) issue();

  uint64_t deadline = host::SteadyNowMs() + duration_ms;
  while (host::SteadyNowMs() < deadline && !dead) {
    if (!client.PollOnce(5)) break;
  }
  if (dead || !client.connected()) failed->store(true);
  // Drain callbacks that would otherwise fire into destroyed state.
  client.Close();
}

Result<NetRow> Measure(LiveServiceHarness* h, TestUser* user,
                       uint64_t connections, uint64_t pipeline,
                       uint64_t duration_ms) {
  const auto identity = h->host("n0")->WithNode(
      [](node::Node* n) { return n->service_identity(); });
  const uint16_t port = h->host("n0")->rpc_port();

  std::vector<std::vector<uint64_t>> lat(connections);
  std::atomic<uint64_t> completed{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  threads.reserve(connections);
  uint64_t t0 = NowUs();
  for (uint64_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      RunConnection(identity, user, port, static_cast<int>(c), pipeline,
                    duration_ms, &lat[c], &completed, &failed);
    });
  }
  for (auto& t : threads) t.join();
  uint64_t elapsed_us = NowUs() - t0;
  if (failed.load()) return Status::Unavailable("bench connection died");
  if (completed.load() == 0) return Status::Unavailable("no completions");

  std::vector<uint64_t> all;
  for (auto& v : lat) all.insert(all.end(), v.begin(), v.end());
  NetRow row;
  row.connections = connections;
  row.pipeline = pipeline;
  row.tx_per_s = static_cast<double>(completed.load()) * 1e6 /
                 static_cast<double>(elapsed_us);
  row.p50_us = Percentile(&all, 0.50);
  row.p99_us = Percentile(&all, 0.99);
  return row;
}

int Run(int argc, char** argv) {
  const bool smoke = SmokeMode(argc, argv);
  std::string json_path = "BENCH_net.json";
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-') json_path = argv[i];
  }

  std::printf("Live 3-node cluster, closed-loop client load (wall clock)\n");
  LiveServiceHarness h;
  TestUser* user = h.AddUser("bench");
  if (h.StartGenesis() == nullptr || h.JoinAndTrust("n1") == nullptr ||
      h.JoinAndTrust("n2") == nullptr) {
    std::fprintf(stderr, "live cluster bring-up failed\n");
    return 1;
  }

  struct Config {
    uint64_t connections, pipeline;
  };
  std::vector<Config> configs =
      smoke ? std::vector<Config>{{1, 1}, {4, 8}}
            : std::vector<Config>{{1, 1}, {1, 8}, {4, 8}, {8, 16}};
  const uint64_t duration_ms = smoke ? 400 : 3000;

  std::printf("%-12s %-10s %12s %10s %10s\n", "connections", "pipeline",
              "tx/s", "p50 us", "p99 us");
  std::vector<NetRow> rows;
  for (const Config& cfg : configs) {
    auto row = Measure(&h, user, cfg.connections, cfg.pipeline, duration_ms);
    if (!row.ok()) {
      std::fprintf(stderr, "measurement failed: %s\n",
                   row.status().ToString().c_str());
      return 1;
    }
    std::printf("%-12llu %-10llu %12.0f %10.0f %10.0f\n",
                static_cast<unsigned long long>(row->connections),
                static_cast<unsigned long long>(row->pipeline),
                row->tx_per_s, row->p50_us, row->p99_us);
    std::fflush(stdout);
    rows.push_back(*row);
  }

  json::Array out_rows;
  for (const NetRow& row : rows) {
    json::Object o;
    o["connections"] = row.connections;
    o["pipeline"] = row.pipeline;
    o["tx_per_s"] = row.tx_per_s;
    o["p50_us"] = row.p50_us;
    o["p99_us"] = row.p99_us;
    out_rows.push_back(json::Value(std::move(o)));
  }
  json::Object root;
  root["smoke"] = smoke;
  root["net"] = json::Value(std::move(out_rows));
  std::ofstream f(json_path);
  f << json::Value(std::move(root)).DumpPretty() << "\n";
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main(int argc, char** argv) { return ccf::bench::Run(argc, argv); }
