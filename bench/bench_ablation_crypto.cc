// Ablation: costs of the cryptographic building blocks on the hot path —
// explains where the per-request and per-signature time in Figures 7/8
// goes (GCM per session record and channel message; SHA-256 per Merkle
// leaf; Schnorr sign per signature transaction).

#include <benchmark/benchmark.h>

#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sign.h"
#include "merkle/merkle.h"

namespace {

using namespace ccf;

void BM_Sha256(benchmark::State& state) {
  crypto::Drbg drbg("bench", 0);
  Bytes data = drbg.Generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_AesGcmSeal(benchmark::State& state) {
  crypto::Drbg drbg("bench", 1);
  crypto::AesGcm gcm(drbg.Generate(32));
  Bytes iv = drbg.Generate(12);
  Bytes data = drbg.Generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.Seal(iv, data, {}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SchnorrSign(benchmark::State& state) {
  crypto::KeyPair kp = crypto::KeyPair::FromSeed(ToBytes("bench"));
  Bytes msg = ToBytes("merkle root signature payload, 48 bytes or so...");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.Sign(msg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  crypto::KeyPair kp = crypto::KeyPair::FromSeed(ToBytes("bench"));
  Bytes msg = ToBytes("merkle root signature payload, 48 bytes or so...");
  auto sig = kp.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Verify(kp.public_key(), msg, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchnorrVerify);

void BM_EcdhSharedSecret(benchmark::State& state) {
  crypto::KeyPair a = crypto::KeyPair::FromSeed(ToBytes("a"));
  crypto::KeyPair b = crypto::KeyPair::FromSeed(ToBytes("b"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DeriveSharedSecret(b.public_key()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcdhSharedSecret);

void BM_MerkleAppend(benchmark::State& state) {
  merkle::MerkleTree tree;
  Bytes leaf = ToBytes("transaction leaf content 0123456789");
  for (auto _ : state) {
    tree.Append(leaf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MerkleAppend);

void BM_MerkleRoot(benchmark::State& state) {
  merkle::MerkleTree tree;
  for (int i = 0; i < state.range(0); ++i) {
    tree.Append(ToBytes("leaf " + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(1000)->Arg(100000);

void BM_MerkleProof(benchmark::State& state) {
  merkle::MerkleTree tree;
  const uint64_t n = state.range(0);
  for (uint64_t i = 0; i < n; ++i) {
    tree.Append(ToBytes("leaf " + std::to_string(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.GetProof(i++ % n, n));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MerkleProof)->Arg(1000)->Arg(100000);

}  // namespace

BENCHMARK_MAIN();
