// Ablation: costs of the cryptographic building blocks on the hot path —
// explains where the per-request and per-signature time in Figures 7/8
// goes (GCM per session record and channel message; SHA-256 per Merkle
// leaf; Schnorr sign per signature transaction).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sign.h"
#include "merkle/merkle.h"

namespace {

using namespace ccf;

void BM_Sha256(benchmark::State& state) {
  crypto::Drbg drbg("bench", 0);
  Bytes data = drbg.Generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Sha256::Hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
// The 1 MiB case exercises the multi-block compression fast path in
// Sha256::Update (whole blocks hashed straight from the input span).
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536)->Arg(1 << 20);

// 4 equal-length messages through the interleaved kernel vs 4 scalar
// hashes — the ablation for MerkleTree::AppendBatch's inner loop.
void BM_Sha256x4(benchmark::State& state) {
  crypto::Drbg drbg("bench", 0);
  Bytes data[4];
  const uint8_t* ptrs[4];
  for (int i = 0; i < 4; ++i) {
    data[i] = drbg.Generate(state.range(0));
    ptrs[i] = data[i].data();
  }
  crypto::Sha256Digest out[4];
  for (auto _ : state) {
    crypto::Sha256x4(ptrs, state.range(0), out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Sha256x4)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha256x4Scalar(benchmark::State& state) {
  crypto::Drbg drbg("bench", 0);
  Bytes data[4];
  for (int i = 0; i < 4; ++i) data[i] = drbg.Generate(state.range(0));
  crypto::Sha256Digest out[4];
  for (auto _ : state) {
    for (int i = 0; i < 4; ++i) out[i] = crypto::Sha256::Hash(data[i]);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 4);
}
BENCHMARK(BM_Sha256x4Scalar)->Arg(64)->Arg(1024)->Arg(65536);

void BM_AesGcmSeal(benchmark::State& state) {
  crypto::Drbg drbg("bench", 1);
  crypto::AesGcm gcm(drbg.Generate(32));
  Bytes iv = drbg.Generate(12);
  Bytes data = drbg.Generate(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(gcm.Seal(iv, data, {}));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesGcmSeal)->Arg(64)->Arg(1024)->Arg(65536);

void BM_SchnorrSign(benchmark::State& state) {
  crypto::KeyPair kp = crypto::KeyPair::FromSeed(ToBytes("bench"));
  Bytes msg = ToBytes("merkle root signature payload, 48 bytes or so...");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.Sign(msg));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  crypto::KeyPair kp = crypto::KeyPair::FromSeed(ToBytes("bench"));
  Bytes msg = ToBytes("merkle root signature payload, 48 bytes or so...");
  auto sig = kp.Sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::Verify(kp.public_key(), msg, sig));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SchnorrVerify);

void BM_EcdhSharedSecret(benchmark::State& state) {
  crypto::KeyPair a = crypto::KeyPair::FromSeed(ToBytes("a"));
  crypto::KeyPair b = crypto::KeyPair::FromSeed(ToBytes("b"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.DeriveSharedSecret(b.public_key()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EcdhSharedSecret);

void BM_MerkleAppend(benchmark::State& state) {
  merkle::MerkleTree tree;
  Bytes leaf = ToBytes("transaction leaf content 0123456789");
  for (auto _ : state) {
    tree.Append(leaf);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MerkleAppend);

// Batched vs serial replay of a raft append batch / ledger segment.
void BM_MerkleAppendBatch(benchmark::State& state) {
  const size_t n = state.range(0);
  std::vector<Bytes> leaves;
  for (size_t i = 0; i < n; ++i) {
    leaves.push_back(ToBytes("transaction leaf content 0123456789"));
  }
  for (auto _ : state) {
    merkle::MerkleTree tree;
    tree.AppendBatch(leaves);
    benchmark::DoNotOptimize(tree.Root());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MerkleAppendBatch)->Arg(64)->Arg(1024)->Arg(16384);

void BM_MerkleAppendSerial(benchmark::State& state) {
  const size_t n = state.range(0);
  Bytes leaf = ToBytes("transaction leaf content 0123456789");
  for (auto _ : state) {
    merkle::MerkleTree tree;
    for (size_t i = 0; i < n; ++i) tree.Append(leaf);
    benchmark::DoNotOptimize(tree.Root());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_MerkleAppendSerial)->Arg(64)->Arg(1024)->Arg(16384);

// Batch signature verification (audit replay, backup commit boundary,
// joiner catch-up) vs one-at-a-time verification.
std::vector<crypto::BatchVerifyItem> MakeVerifyItems(
    size_t n, std::vector<Bytes>* msgs,
    std::vector<crypto::SignatureBytes>* sigs, crypto::KeyPair* kp) {
  msgs->clear();
  sigs->clear();
  for (size_t i = 0; i < n; ++i) {
    msgs->push_back(ToBytes("signed merkle root #" + std::to_string(i)));
    sigs->push_back(kp->Sign(msgs->back()));
  }
  std::vector<crypto::BatchVerifyItem> items;
  for (size_t i = 0; i < n; ++i) {
    items.push_back({kp->public_key(), (*msgs)[i], (*sigs)[i]});
  }
  return items;
}

void BM_VerifyBatch(benchmark::State& state) {
  crypto::KeyPair kp = crypto::KeyPair::FromSeed(ToBytes("bench"));
  std::vector<Bytes> msgs;
  std::vector<crypto::SignatureBytes> sigs;
  auto items = MakeVerifyItems(state.range(0), &msgs, &sigs, &kp);
  crypto::Drbg drbg("bench-batch-verify", 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::VerifyBatch(items, &drbg));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VerifyBatch)->Arg(4)->Arg(16)->Arg(64);

void BM_VerifySerial(benchmark::State& state) {
  crypto::KeyPair kp = crypto::KeyPair::FromSeed(ToBytes("bench"));
  std::vector<Bytes> msgs;
  std::vector<crypto::SignatureBytes> sigs;
  auto items = MakeVerifyItems(state.range(0), &msgs, &sigs, &kp);
  for (auto _ : state) {
    bool all = true;
    for (const auto& it : items) {
      all = all && crypto::Verify(it.pub, it.msg, it.sig);
    }
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_VerifySerial)->Arg(4)->Arg(16)->Arg(64);

void BM_MerkleRoot(benchmark::State& state) {
  merkle::MerkleTree tree;
  for (int i = 0; i < state.range(0); ++i) {
    tree.Append(ToBytes("leaf " + std::to_string(i)));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Root());
  }
}
BENCHMARK(BM_MerkleRoot)->Arg(1000)->Arg(100000);

void BM_MerkleProof(benchmark::State& state) {
  merkle::MerkleTree tree;
  const uint64_t n = state.range(0);
  for (uint64_t i = 0; i < n; ++i) {
    tree.Append(ToBytes("leaf " + std::to_string(i)));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.GetProof(i++ % n, n));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MerkleProof)->Arg(1000)->Arg(100000);

// Run before any timing: the batch kernels must (a) be bit-equivalent to
// their scalar counterparts and (b) actually engage (stats counters move).
// A silent fallback to the scalar path would make the ablation numbers
// meaningless.
bool AssertBatchKernelsEngage() {
  crypto::Drbg drbg("bench-selftest", 0);

  // Sha256x4 == 4 independent Sha256.
  for (size_t len : {0u, 1u, 55u, 56u, 64u, 300u}) {
    Bytes data[4];
    const uint8_t* ptrs[4];
    for (int i = 0; i < 4; ++i) {
      data[i] = drbg.Generate(len);
      ptrs[i] = data[i].data();
    }
    crypto::Sha256Digest out[4];
    crypto::Sha256x4(ptrs, len, out);
    for (int i = 0; i < 4; ++i) {
      if (out[i] != crypto::Sha256::Hash(data[i])) {
        std::fprintf(stderr, "selftest: Sha256x4 mismatch at len %zu\n", len);
        return false;
      }
    }
  }

  // AppendBatch == serial Append, and the 4-way kernel engaged.
  std::vector<Bytes> leaves;
  for (int i = 0; i < 37; ++i) {
    leaves.push_back(ToBytes("transaction leaf content 0123456789"));
  }
  merkle::MerkleTree batched, serial;
  batched.AppendBatch(leaves);
  for (const Bytes& l : leaves) serial.Append(l);
  if (batched.Root() != serial.Root()) {
    std::fprintf(stderr, "selftest: AppendBatch root mismatch\n");
    return false;
  }
  if (batched.stats().x4_groups == 0) {
    std::fprintf(stderr, "selftest: AppendBatch never used Sha256x4\n");
    return false;
  }

  // VerifyBatch passes valid batches and flags a forgery.
  crypto::KeyPair kp = crypto::KeyPair::FromSeed(ToBytes("bench"));
  std::vector<Bytes> msgs;
  std::vector<crypto::SignatureBytes> sigs;
  auto items = MakeVerifyItems(8, &msgs, &sigs, &kp);
  if (!crypto::VerifyBatch(items, &drbg)) {
    std::fprintf(stderr, "selftest: VerifyBatch rejected valid batch\n");
    return false;
  }
  sigs[3][0] ^= 1;
  std::vector<bool> ok;
  if (crypto::VerifyBatch(items, &drbg, &ok) || ok[3] || !ok[2]) {
    std::fprintf(stderr, "selftest: VerifyBatch missed a forgery\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (!AssertBatchKernelsEngage()) return 1;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
