// Observability subsystem overhead: the per-record hot-path cost of each
// metric kind (one relaxed atomic RMW by design, DESIGN.md observe
// section), the read-side cost of serializing a populated registry to
// JSON and Prometheus text, and the end-to-end request metrics a short
// instrumented service run produces.
//
// Results go to BENCH_observe.json (or the path given as the first
// non-flag argument) for scripts/bench_diff.py. --smoke / CCF_BENCH_SMOKE=1
// shrinks the run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "observe/metrics.h"

namespace ccf::bench {
namespace {

double NsPerOp(std::chrono::steady_clock::time_point t0, uint64_t ops) {
  double ns = std::chrono::duration<double, std::nano>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
  return ops > 0 ? ns / static_cast<double>(ops) : 0;
}

int RunAll(const std::string& json_path, bool smoke) {
  const uint64_t hot_ops = smoke ? 1'000'000 : 50'000'000;
  const uint64_t requests = smoke ? 200 : 2000;

  json::Object root;
  root["smoke"] = smoke;

  // Hot path: a relaxed RMW per record, no locks, no allocation.
  observe::Registry reg;
  observe::Counter* counter = reg.GetCounter("bench.counter");
  observe::Gauge* gauge = reg.GetGauge("bench.gauge");
  observe::Histogram* hist = reg.GetHistogram("bench.histogram");

  auto t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < hot_ops; ++i) counter->Inc();
  double counter_ns = NsPerOp(t0, hot_ops);

  t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < hot_ops; ++i) gauge->Set(i);
  double gauge_ns = NsPerOp(t0, hot_ops);

  t0 = std::chrono::steady_clock::now();
  for (uint64_t i = 0; i < hot_ops; ++i) hist->Record(i & 0xFFFFF);
  double histogram_ns = NsPerOp(t0, hot_ops);

  if (counter->value() != hot_ops || hist->count() != hot_ops) {
    std::fprintf(stderr, "hot-path self check failed\n");
    return 1;
  }
  json::Object hotpath;
  hotpath["counter_ns"] = counter_ns;
  hotpath["gauge_ns"] = gauge_ns;
  hotpath["histogram_ns"] = histogram_ns;
  root["hotpath"] = json::Value(std::move(hotpath));
  std::printf("hot path (%llu ops each): counter %.1f ns, gauge %.1f ns, "
              "histogram %.1f ns\n",
              static_cast<unsigned long long>(hot_ops), counter_ns, gauge_ns,
              histogram_ns);

  // Instrumented service: closed-loop writes, then read the registry the
  // way GET /node/metrics does.
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  if (n0 == nullptr) {
    std::fprintf(stderr, "genesis failed\n");
    return 1;
  }
  node::Client* client = h.UserClient("user0");
  ClosedLoopDriver driver(&h.env());
  driver.AddStream(client, [](uint64_t s) { return MakeWriteRequest(s); },
                   16);
  auto stats = driver.Run(requests);
  if (stats.errors > 0) {
    std::fprintf(stderr, "service run saw %llu errors\n",
                 static_cast<unsigned long long>(stats.errors));
    return 1;
  }

  const observe::Histogram* lat =
      n0->metrics().FindHistogram("rpc.latency_us.POST /app/log");
  if (lat == nullptr || lat->count() < requests) {
    std::fprintf(stderr, "request latency histogram missing or short\n");
    return 1;
  }
  observe::Histogram::Snapshot snap = lat->GetSnapshot();
  json::Object service;
  service["requests"] = static_cast<uint64_t>(stats.completed);
  service["tx_per_s"] = stats.throughput();
  service["rpc_p50_us"] = snap.p50;
  service["rpc_p99_us"] = snap.p99;
  root["service"] = json::Value(std::move(service));
  std::printf("service: %llu writes at %.0f tx/s, rpc p50 %llu us, "
              "p99 %llu us\n",
              static_cast<unsigned long long>(stats.completed),
              stats.throughput(), static_cast<unsigned long long>(snap.p50),
              static_cast<unsigned long long>(snap.p99));

  // Exposition cost over the genuinely populated node registry.
  const int expo_iters = smoke ? 20 : 200;
  t0 = std::chrono::steady_clock::now();
  size_t json_bytes = 0;
  for (int i = 0; i < expo_iters; ++i) {
    json_bytes = n0->metrics().ToJson().Dump().size();
  }
  double to_json_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      expo_iters;
  t0 = std::chrono::steady_clock::now();
  size_t prom_bytes = 0;
  for (int i = 0; i < expo_iters; ++i) {
    prom_bytes = n0->metrics().ToPrometheus().size();
  }
  double to_prom_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count() /
                      expo_iters;
  json::Object exposition;
  exposition["json_bytes"] = static_cast<uint64_t>(json_bytes);
  exposition["prometheus_bytes"] = static_cast<uint64_t>(prom_bytes);
  exposition["to_json_ms"] = to_json_ms;
  exposition["to_prometheus_ms"] = to_prom_ms;
  root["exposition"] = json::Value(std::move(exposition));
  std::printf("exposition: ToJson %.3f ms (%zu B), ToPrometheus %.3f ms "
              "(%zu B)\n",
              to_json_ms, json_bytes, to_prom_ms, prom_bytes);

  std::string dumped = json::Value(std::move(root)).DumpPretty();
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(dumped.data(), 1, dumped.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main(int argc, char** argv) {
  bool smoke = ccf::bench::SmokeMode();
  std::string json_path = "BENCH_observe.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  return ccf::bench::RunAll(json_path, smoke);
}
