// Ablation: CHAMP persistent map vs copied std::map for the KV store's
// per-version snapshots (DESIGN.md §4.2: CCF chose CHAMP so that keeping a
// root per ledger version and rolling back is cheap).
//
// "Snapshot" here = retaining an immutable copy of the full map per write,
// which is exactly what the store does for every transaction between
// commits.

#include <benchmark/benchmark.h>

#include <map>
#include <string>

#include "ds/champ.h"

namespace {

using ccf::ds::ChampMap;

std::string Key(int i) { return "key-" + std::to_string(i); }

void BM_ChampPut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ChampMap<std::string, std::string> base;
  for (int i = 0; i < n; ++i) base = base.Put(Key(i), "value");
  int i = 0;
  for (auto _ : state) {
    auto next = base.Put(Key(i++ % n), "updated");
    benchmark::DoNotOptimize(next);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChampPut)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ChampGet(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ChampMap<std::string, std::string> base;
  for (int i = 0; i < n; ++i) base = base.Put(Key(i), "value");
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(base.Get(Key(i++ % n)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChampGet)->Arg(1000)->Arg(10000)->Arg(100000);

// Persistent version retention: one Put + keep the old version alive.
// CHAMP: O(log n) path copy. std::map: O(n) deep copy per version.
void BM_ChampVersionedWrite(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ChampMap<std::string, std::string> base;
  for (int i = 0; i < n; ++i) base = base.Put(Key(i), "value");
  int i = 0;
  for (auto _ : state) {
    ChampMap<std::string, std::string> version =
        base.Put(Key(i++ % n), "v2");
    benchmark::DoNotOptimize(version);  // old `base` stays intact
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChampVersionedWrite)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_StdMapVersionedWrite(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::map<std::string, std::string> base;
  for (int i = 0; i < n; ++i) base[Key(i)] = "value";
  int i = 0;
  for (auto _ : state) {
    std::map<std::string, std::string> version = base;  // deep copy
    version[Key(i++ % n)] = "v2";
    benchmark::DoNotOptimize(version);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdMapVersionedWrite)->Arg(1000)->Arg(10000);

void BM_ChampRollback(benchmark::State& state) {
  // Rollback = dropping newer roots; O(1) regardless of how much was
  // written since (this is the §4.2 view-change path).
  const int n = static_cast<int>(state.range(0));
  ChampMap<std::string, std::string> committed;
  for (int i = 0; i < n; ++i) committed = committed.Put(Key(i), "value");
  for (auto _ : state) {
    state.PauseTiming();
    ChampMap<std::string, std::string> speculative = committed;
    for (int i = 0; i < 100; ++i) speculative = speculative.Put(Key(i), "x");
    state.ResumeTiming();
    speculative = committed;  // rollback
    benchmark::DoNotOptimize(speculative);
  }
}
BENCHMARK(BM_ChampRollback)->Arg(10000);

}  // namespace

BENCHMARK_MAIN();
