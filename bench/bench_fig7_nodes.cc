// Figure 7 (left & center): impact of the number of CCF nodes on write and
// read throughput; (right): impact of the read/write ratio on single-node
// throughput.
//
// Reproduces the *shape* of the paper's result on the simulated substrate:
//   - write throughput is roughly flat / slightly decreasing with more
//     nodes (writes all execute on the primary; replication adds work),
//   - read throughput scales with the node count (reads are served locally
//     by every node, paper §4.3),
//   - increasing the read ratio increases single-node throughput.

#include <cstdio>

#include "bench/bench_util.h"

namespace ccf::bench {
namespace {

const uint64_t kRequests = SmokeMode() ? 400 : 4000;
constexpr int kPipeline = 64;

// Builds an n-node service and returns it ready for load.
std::unique_ptr<ServiceHarness> BuildService(int n) {
  auto h = std::make_unique<ServiceHarness>();
  h->SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->tee_mode = tee::TeeMode::kVirtual;
    cfg->signature_interval_txs = 100;
    cfg->signature_interval_ms = 50;
    cfg->snapshot_interval_txs = 1u << 30;
  });
  for (int u = 0; u < 8; ++u) h->AddUser("user" + std::to_string(u));
  h->StartGenesis();
  for (int i = 1; i < n; ++i) {
    if (h->JoinAndTrust("n" + std::to_string(i), 20000) == nullptr) {
      std::fprintf(stderr, "failed to grow service to %d nodes\n", n);
      return nullptr;
    }
  }
  Preload(&h->env(), h->UserClient("user0", "n0"));
  return h;
}

double MeasureWrites(ServiceHarness* h, int n) {
  (void)n;
  ClosedLoopDriver driver(&h->env());
  // Paper §7: "the user directly writes to the primary".
  std::string primary = h->Primary()->id();
  for (int u = 0; u < 4; ++u) {
    driver.AddStream(h->UserClient("user" + std::to_string(u), primary),
                     [](uint64_t s) { return MakeWriteRequest(s); },
                     kPipeline);
  }
  double tput = driver.Run(kRequests).throughput();
  // Drain replication before the next phase measures.
  h->WaitForCommitEverywhere(h->Primary()->last_seqno(), 30000);
  return tput;
}

double MeasureReads(ServiceHarness* h, int n) {
  ClosedLoopDriver driver(&h->env());
  // Reads are spread across every node: each node serves them locally.
  for (int i = 0; i < n; ++i) {
    std::string node_id = "n" + std::to_string(i);
    for (int u = 0; u < 2; ++u) {
      driver.AddStream(
          h->UserClient("user" + std::to_string(u + 2 * i % 8), node_id),
          [](uint64_t s) { return MakeReadRequest(s); }, kPipeline);
    }
  }
  return driver.Run(kRequests).throughput();
}

void RunNodeSweep() {
  std::printf("Figure 7 (left & center): throughput vs number of nodes\n");
  std::printf(
      "(raw = all nodes share one core in the simulation; x n = normalized\n"
      " to one core per node, as in the paper's one-VM-per-node testbed)\n");
  std::printf("%-8s %14s %14s %14s %14s\n", "nodes", "writes raw", "writes x n",
              "reads raw", "reads x n");
  for (int n : {1, 3, 5}) {
    auto h = BuildService(n);
    if (h == nullptr) continue;
    double writes = MeasureWrites(h.get(), n);
    double reads = MeasureReads(h.get(), n);
    std::printf("%-8d %14.0f %14.0f %14.0f %14.0f\n", n, writes, writes * n,
                reads, reads * n);
    std::fflush(stdout);
  }
}

void RunRatioSweep() {
  std::printf("\nFigure 7 (right): single-node throughput vs read ratio\n");
  std::printf("%-12s %16s\n", "read-ratio", "total (tx/s)");
  for (int read_pct : {0, 25, 50, 75, 100}) {
    auto h = BuildService(1);
    if (h == nullptr) continue;
    ClosedLoopDriver driver(&h->env());
    for (int u = 0; u < 4; ++u) {
      driver.AddStream(h->UserClient("user" + std::to_string(u), "n0"),
                       [read_pct](uint64_t s) {
                         bool is_read =
                             static_cast<int>(s * 7919 % 100) < read_pct;
                         return is_read ? MakeReadRequest(s)
                                        : MakeWriteRequest(s);
                       },
                       kPipeline);
    }
    double tput = driver.Run(kRequests).throughput();
    std::printf("%3d%%         %16.0f\n", read_pct, tput);
    std::fflush(stdout);
  }
}

}  // namespace
}  // namespace ccf::bench

int main() {
  ccf::bench::RunNodeSweep();
  ccf::bench::RunRatioSweep();
  return 0;
}
