// Snapshot bootstrap (paper §4.4): time for a joiner to become part of the
// service as the ledger grows, with and without verified snapshots.
//
//   snapshot -- the service snapshots periodically, retires ledger chunks
//               below the horizon, and hands joiners a verified bundle:
//               join cost tracks the suffix length, not the ledger length
//   replay   -- snapshots disabled; the joiner replays the entire ledger
//               through consensus catch-up: join cost grows linearly
//
// Results go to BENCH_snapshots.json (or the path given as the first
// non-flag argument) for scripts/bench_diff.py. --smoke / CCF_BENCH_SMOKE=1
// shrinks the run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace ccf::bench {
namespace {

struct JoinRow {
  uint64_t ledger_entries = 0;
  double wall_seconds = 0;
  uint64_t entries_replayed = 0;
  uint64_t snapshot_seqno = 0;
};

// Builds a service with `writes` committed entries and measures the wall
// time for a fresh node to join and catch up to the commit point.
bool RunJoin(uint64_t writes, bool with_snapshots, JoinRow* out) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak([&](node::NodeConfig* cfg) {
    cfg->signature_interval_txs = 100;
    cfg->signature_interval_ms = 50;
    if (with_snapshots) {
      // Snapshot a handful of times per run, whatever the ledger length.
      cfg->snapshot_interval_txs = writes >= 2000 ? 500 : writes / 4;
      cfg->snapshot_retire_ledger = true;
      cfg->join_from_snapshot = true;
    } else {
      cfg->snapshot_interval_txs = 1u << 30;
      cfg->join_from_snapshot = false;
    }
  });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  ClosedLoopDriver driver(&h.env());
  driver.AddStream(client, [](uint64_t s) { return MakeWriteRequest(s); },
                   32);
  auto load = driver.Run(writes);
  if (load.errors > 0) {
    std::fprintf(stderr, "preload saw %llu errors\n",
                 static_cast<unsigned long long>(load.errors));
    return false;
  }
  if (!h.env().RunUntil(
          [&] { return n0->commit_seqno() >= n0->last_seqno(); }, 60000)) {
    std::fprintf(stderr, "service never quiesced\n");
    return false;
  }
  if (with_snapshots &&
      !h.env().RunUntil([&] { return n0->host_snapshot_seqno() > 0; },
                        60000)) {
    std::fprintf(stderr, "no snapshot was ever persisted\n");
    return false;
  }

  uint64_t target = n0->commit_seqno();
  uint64_t horizon = n0->host_ledger().base_seqno();
  // Join, get trusted by the consortium, and catch up to the commit
  // point: the replication catch-up is the part that scales with the
  // ledger (or suffix) length; the governance round trips are constant.
  auto t0 = std::chrono::steady_clock::now();
  node::Node* n1 = h.JoinAndTrust("n1", 600000);
  bool joined =
      n1 != nullptr &&
      h.env().RunUntil([&] { return n1->commit_seqno() >= target; }, 600000);
  out->wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (!joined) {
    node::Node* probe = h.node("n1");
    std::fprintf(stderr,
                 "joiner never caught up (trusted=%d joined=%d commit=%llu "
                 "target=%llu n0_commit=%llu)\n",
                 n1 != nullptr, probe != nullptr && probe->has_joined(),
                 static_cast<unsigned long long>(
                     probe != nullptr ? probe->commit_seqno() : 0),
                 static_cast<unsigned long long>(target),
                 static_cast<unsigned long long>(n0->commit_seqno()));
    return false;
  }

  out->ledger_entries = target;
  out->snapshot_seqno = n0->host_snapshot_seqno();
  uint64_t base = n1->host_ledger().base_seqno();
  out->entries_replayed = n1->host_ledger().last_seqno() - base;
  if (with_snapshots) {
    // The acceptance property: the joiner started from the verified
    // bundle and never saw the retired chunks.
    if (base < horizon || base == 0) {
      std::fprintf(stderr,
                   "ERROR: joiner base %llu below retirement horizon %llu\n",
                   static_cast<unsigned long long>(base),
                   static_cast<unsigned long long>(horizon));
      return false;
    }
  }
  return true;
}

int RunAll(const std::string& json_path, bool smoke) {
  std::vector<uint64_t> lengths =
      smoke ? std::vector<uint64_t>{200, 400}
            : std::vector<uint64_t>{1000, 2500, 5000, 10000};

  json::Object root;
  root["smoke"] = smoke;
  json::Object join;
  for (bool with_snapshots : {true, false}) {
    const char* mode = with_snapshots ? "snapshot" : "replay";
    std::printf("join-time bench, mode=%s\n", mode);
    json::Array rows;
    for (uint64_t n : lengths) {
      JoinRow row;
      if (!RunJoin(n, with_snapshots, &row)) return 1;
      std::printf(
          "  ledger=%llu join=%.3fs replayed=%llu snapshot_seqno=%llu\n",
          static_cast<unsigned long long>(row.ledger_entries),
          row.wall_seconds,
          static_cast<unsigned long long>(row.entries_replayed),
          static_cast<unsigned long long>(row.snapshot_seqno));
      json::Object r;
      r["ledger_entries"] = row.ledger_entries;
      r["wall_seconds"] = row.wall_seconds;
      r["entries_replayed"] = row.entries_replayed;
      r["snapshot_seqno"] = row.snapshot_seqno;
      rows.push_back(json::Value(std::move(r)));
    }
    join[mode] = json::Value(std::move(rows));
  }
  root["join"] = json::Value(std::move(join));

  std::string dumped = json::Value(std::move(root)).DumpPretty();
  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(dumped.data(), 1, dumped.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace ccf::bench

int main(int argc, char** argv) {
  bool smoke = ccf::bench::SmokeMode();
  std::string json_path = "BENCH_snapshots.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      json_path = argv[i];
    }
  }
  return ccf::bench::RunAll(json_path, smoke);
}
