// Ablation: the host/enclave boundary (paper §7). Measures the raw
// ring-buffer transfer rate and the cost the SGX-sim mode adds by sealing
// every crossing payload — the mechanistic source of Table 5's
// SGX-vs-virtual gap in this reproduction.

#include <benchmark/benchmark.h>

#include "ds/ringbuffer.h"
#include "tee/boundary.h"

namespace {

using namespace ccf;

void BM_RingBufferRoundTrip(benchmark::State& state) {
  ds::RingBuffer rb(1 << 16);
  Bytes payload(state.range(0), 0xAB);
  uint32_t type;
  Bytes out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rb.TryWrite(1, payload));
    benchmark::DoNotOptimize(rb.TryRead(&type, &out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RingBufferRoundTrip)->Arg(64)->Arg(512)->Arg(4096);

void BoundaryRoundTrip(benchmark::State& state, tee::TeeMode mode) {
  tee::EnclaveBoundary boundary(mode, 1 << 16);
  Bytes payload(state.range(0), 0xCD);
  uint32_t type;
  Bytes out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(boundary.HostSend(1, payload));
    benchmark::DoNotOptimize(boundary.EnclaveReceive(&type, &out));
    benchmark::DoNotOptimize(boundary.EnclaveSend(2, payload));
    benchmark::DoNotOptimize(boundary.HostReceive(&type, &out));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0) * 2);
}

void BM_BoundaryVirtual(benchmark::State& state) {
  BoundaryRoundTrip(state, tee::TeeMode::kVirtual);
}
BENCHMARK(BM_BoundaryVirtual)->Arg(64)->Arg(512)->Arg(4096);

void BM_BoundarySgxSim(benchmark::State& state) {
  BoundaryRoundTrip(state, tee::TeeMode::kSgxSim);
}
BENCHMARK(BM_BoundarySgxSim)->Arg(64)->Arg(512)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
